package jetstream

// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation (backed by the same internal/bench harness as cmd/experiments,
// in its quick configuration), plus microbenchmarks of the core machinery.
// Reported custom metrics carry the experiment's headline numbers so
// `go test -bench` output doubles as a miniature results table; the full
// reports come from `go run ./cmd/experiments`.

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"jetstream/internal/bench"
	"jetstream/internal/core"
	"jetstream/internal/event"
	"jetstream/internal/graph"
	"jetstream/internal/mem"
	"jetstream/internal/queue"
	"jetstream/internal/stats"
	"jetstream/internal/stream"
)

// ---------------------------------------------------------------------------
// Tables and figures
// ---------------------------------------------------------------------------

func BenchmarkTable3Speedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Table3()
		if err != nil {
			b.Fatal(err)
		}
		gpSSSP, ksSSSP := res.GeoMeans("sssp")
		gpPR, gbPR := res.GeoMeans("pagerank")
		b.ReportMetric(gpSSSP, "sssp-vs-GP-x")
		b.ReportMetric(ksSSSP, "sssp-vs-KS-x")
		b.ReportMetric(gpPR, "pr-vs-GP-x")
		b.ReportMetric(gbPR, "pr-vs-GB-x")
	}
}

func BenchmarkFig9Accesses(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Fig9()
		if err != nil {
			b.Fatal(err)
		}
		var vsum, esum float64
		for _, c := range res.Cells {
			vsum += c.VertexRatio
			esum += c.EdgeRatio
		}
		n := float64(len(res.Cells))
		b.ReportMetric(vsum/n, "mean-vertex-ratio")
		b.ReportMetric(esum/n, "mean-edge-ratio")
	}
}

func BenchmarkFig10Resets(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Fig10()
		if err != nil {
			b.Fatal(err)
		}
		var jet, ks float64
		for _, c := range res.Cells {
			jet += float64(c.JetResets)
			ks += float64(c.KSResets)
		}
		b.ReportMetric(jet, "jetstream-resets")
		b.ReportMetric(ks, "kickstarter-resets")
	}
}

func BenchmarkFig11MemUtil(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Fig11()
		if err != nil {
			b.Fatal(err)
		}
		var jet, gp float64
		for _, c := range res.Cells {
			jet += c.JetUtil
			gp += c.GPUtil
		}
		n := float64(len(res.Cells))
		b.ReportMetric(jet/n, "jetstream-util")
		b.ReportMetric(gp/n, "graphpulse-util")
	}
}

func BenchmarkFig12Optimizations(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		var base, vap, dap float64
		for _, c := range res.Cells {
			base += c.Base
			vap += c.VAP
			dap += c.DAP
		}
		n := float64(len(res.Cells))
		b.ReportMetric(base/n, "base-speedup-x")
		b.ReportMetric(vap/n, "vap-speedup-x")
		b.ReportMetric(dap/n, "dap-speedup-x")
	}
}

func BenchmarkFig13BatchSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			last := s.Points[len(s.Points)-1]
			if s.Algo == "sssp" {
				b.ReportMetric(last.Jet, "sssp-smallbatch-x")
			} else {
				b.ReportMetric(last.Jet, "pr-smallbatch-x")
			}
		}
	}
}

func BenchmarkFig14Composition(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		res, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		for _, s := range res.Series {
			var ins, del float64
			for _, p := range s.Points {
				if p.InsertPct == 100 {
					ins = p.Jet
				}
				if p.InsertPct == 0 {
					del = p.Jet
				}
			}
			if s.Algo == "sssp" && ins > 0 {
				b.ReportMetric(del/ins, "sssp-del-over-ins")
			}
		}
	}
}

func BenchmarkTable4PowerArea(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := bench.NewRunner(true)
		_ = r.Table4()
	}
}

// ---------------------------------------------------------------------------
// Microbenchmarks of the core machinery
// ---------------------------------------------------------------------------

// BenchmarkInitialEvaluation measures a full static run (the GraphPulse
// baseline) in events per second.
func BenchmarkInitialEvaluation(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 20000, Edges: 160000, Seed: 1})
	b.ResetTimer()
	var events uint64
	for i := 0; i < b.N; i++ {
		sys, _ := New(g, SSSP(0), WithTiming(false))
		res := sys.RunInitial()
		events += res.Stats.EventsProcessed
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/run")
}

// BenchmarkParallelism compares the functional engine's throughput across
// worker counts on a LiveJournal-scale synthetic stream: a full static
// evaluation plus an incremental batch train, reported in events per second.
// Run p1 against p8 on a multi-core machine to measure the parallel speedup
// (the CI bench job uploads this comparison as an artifact); on a single
// hardware thread the worker goroutines serialize and the two converge.
func BenchmarkParallelism(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 100000, Edges: 800000, Seed: 1})
	for _, p := range []int{1, 2, 8} {
		b.Run(fmt.Sprintf("p%d", p), func(b *testing.B) {
			b.ReportAllocs()
			var events uint64
			var elapsed time.Duration
			for i := 0; i < b.N; i++ {
				sys, err := New(g, PageRank(0), WithTiming(false), WithParallelism(p))
				if err != nil {
					b.Fatal(err)
				}
				gen := NewStream(StreamConfig{BatchSize: 500, InsertFrac: 0.7, Seed: 2})
				start := time.Now()
				res := sys.RunInitial()
				events += res.Stats.EventsProcessed
				for j := 0; j < 4; j++ {
					br, err := sys.ApplyBatch(gen.Next(sys.Graph()))
					if err != nil {
						b.Fatal(err)
					}
					events += br.Stats.EventsProcessed
				}
				elapsed += time.Since(start)
			}
			if secs := elapsed.Seconds(); secs > 0 {
				b.ReportMetric(float64(events)/secs, "events/sec")
			}
		})
	}
}

// BenchmarkStreamingBatch measures one incremental batch end to end (engine
// plus graph mutation), sweeping the batch size and the mutation path. The
// delta/rebuild comparison is the system-level view of the ApplyBatch
// speedup; the CI bench-applybatch job uploads the sweep as an artifact.
func BenchmarkStreamingBatch(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 20000, Edges: 160000, Seed: 1})
	for _, bs := range []int{100, 1000} {
		for _, mode := range []string{"delta", "rebuild"} {
			b.Run(fmt.Sprintf("%s/batch%d", mode, bs), func(b *testing.B) {
				opts := []Option{WithTiming(false)}
				if mode == "rebuild" {
					opts = append(opts, WithGraphRebuild())
				}
				sys, err := New(g, SSSP(0), opts...)
				if err != nil {
					b.Fatal(err)
				}
				sys.RunInitial()
				gen := NewStream(StreamConfig{BatchSize: bs, InsertFrac: 0.7, Seed: 2})
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkStreamingBatchWithTiming includes the cycle model.
func BenchmarkStreamingBatchWithTiming(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 20000, Edges: 160000, Seed: 1})
	sys, _ := New(g, SSSP(0), WithTiming(true))
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 100, InsertFrac: 0.7, Seed: 2})
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "modelcycles/batch")
}

// BenchmarkQueueInsertCoalesce measures the coalescing queue's insert path.
func BenchmarkQueueInsertCoalesce(b *testing.B) {
	st := &stats.Counters{}
	q := queue.New(1<<16, queue.DefaultConfig(), queue.ReduceCoalesce(func(a, c float64) float64 {
		if a < c {
			return a
		}
		return c
	}), st)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Insert(event.New(uint32(i)&0xffff, float64(i)))
		if i&0xffff == 0xffff {
			q.Drain(func([]event.Event) {})
		}
	}
}

// BenchmarkDRAMModel measures the memory timing model's access path.
func BenchmarkDRAMModel(b *testing.B) {
	d := mem.NewDRAM(mem.DefaultDRAMConfig(), nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Access(uint64(i), uint64(i*64)%(1<<28))
	}
}

// BenchmarkGraphApplyBatch measures CSR version construction in isolation on
// a 100k-vertex graph: the full compacting rebuild (Apply) against the
// slack-based in-place path (ApplyDelta), across batch sizes. Each iteration
// ping-pongs a forward batch and its exact inverse (deletes carry the stored
// weights), so both arms stay valid against the evolving graph and the delta
// arm exercises the in-place path on every iteration rather than decaying
// into compaction. The acceptance target is >=5x fewer ns/op and >=10x fewer
// allocs/op for the delta arm at batch sizes <=1k.
func BenchmarkGraphApplyBatch(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 100000, Edges: 800000, Seed: 1})
	for _, bs := range []int{100, 1000} {
		gen := NewStream(StreamConfig{BatchSize: bs, InsertFrac: 0.5, Seed: 3})
		fwd := gen.Next(g)
		rev := Batch{Inserts: fwd.Deletes, Deletes: fwd.Inserts}
		b.Run(fmt.Sprintf("rebuild/batch%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			cur := g
			batches := [2]Batch{fwd, rev}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ng, err := cur.Apply(batches[i&1])
				if err != nil {
					b.Fatal(err)
				}
				cur = ng
			}
		})
		b.Run(fmt.Sprintf("delta/batch%d", bs), func(b *testing.B) {
			b.ReportAllocs()
			// Pay the one-time dense->slacked conversion outside the loop.
			cur, err := g.ApplyDelta(Batch{})
			if err != nil {
				b.Fatal(err)
			}
			batches := [2]Batch{fwd, rev}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ng, err := cur.ApplyDelta(batches[i&1])
				if err != nil {
					b.Fatal(err)
				}
				cur = ng
			}
		})
	}
}

// BenchmarkQueueSparseDrain measures one DrainRound over a nearly empty
// queue as the vertex space grows: ~1k live events regardless of n. The old
// drain walked every slot (linear in n); the bitmap drain must stay roughly
// flat, demonstrating output-sensitive cost.
func BenchmarkQueueSparseDrain(b *testing.B) {
	min := queue.ReduceCoalesce(func(a, c float64) float64 {
		if a < c {
			return a
		}
		return c
	})
	for _, n := range []int{1 << 16, 1 << 18, 1 << 20} {
		b.Run(fmt.Sprintf("v%d", n), func(b *testing.B) {
			q := queue.New(n, queue.DefaultConfig(), min, nil)
			rng := rand.New(rand.NewSource(7))
			targets := make([]uint32, 1000)
			for i := range targets {
				targets[i] = uint32(rng.Intn(n))
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, t := range targets {
					q.Insert(event.New(t, 1))
				}
				q.DrainRound(func([]event.Event) {})
			}
		})
	}
}

// BenchmarkDetailedTimingBatch measures the per-event pipeline model against
// the batch-level model on the same streaming workload.
func BenchmarkDetailedTimingBatch(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 20000, Edges: 160000, Seed: 1})
	sys, _ := New(g, SSSP(0), WithDetailedTiming())
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 100, InsertFrac: 0.7, Seed: 2})
	b.ResetTimer()
	var cycles uint64
	for i := 0; i < b.N; i++ {
		res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
		if err != nil {
			b.Fatal(err)
		}
		cycles += res.Cycles
	}
	b.ReportMetric(float64(cycles)/float64(b.N), "modelcycles/batch")
}

// BenchmarkMetricsOverhead measures the cost of the always-on observability
// layer on the functional streaming path: "bare-engine" drives the core
// engine directly with no registry attached, "noop-observer" runs the full
// public System — metrics registry, per-batch latency histogram, and a
// do-nothing WithObserver callback. The acceptance budget for the gap is
// <=3% events/sec; the CI bench job uploads the comparison as an artifact.
func BenchmarkMetricsOverhead(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 100000, Edges: 800000, Seed: 1})
	report := func(b *testing.B, events uint64, elapsed time.Duration) {
		if secs := elapsed.Seconds(); secs > 0 {
			b.ReportMetric(float64(events)/secs, "events/sec")
		}
	}
	b.Run("bare-engine", func(b *testing.B) {
		var events uint64
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			st := &stats.Counters{}
			cfg := core.ConfigWithOpt(OptDAP)
			cfg.Engine.Timing = false
			js := core.New(g, PageRank(0), cfg, st)
			gen := NewStream(StreamConfig{BatchSize: 500, InsertFrac: 0.7, Seed: 2})
			start := time.Now()
			js.RunInitial()
			for j := 0; j < 4; j++ {
				if err := js.ApplyBatch(gen.Next(js.Graph())); err != nil {
					b.Fatal(err)
				}
			}
			elapsed += time.Since(start)
			events += st.EventsProcessed
		}
		report(b, events, elapsed)
	})
	b.Run("noop-observer", func(b *testing.B) {
		var events uint64
		var elapsed time.Duration
		for i := 0; i < b.N; i++ {
			sys, err := New(g, PageRank(0), WithTiming(false),
				WithObserver(ObserverFunc(func(TraceEvent) {})))
			if err != nil {
				b.Fatal(err)
			}
			gen := NewStream(StreamConfig{BatchSize: 500, InsertFrac: 0.7, Seed: 2})
			start := time.Now()
			sys.RunInitial()
			for j := 0; j < 4; j++ {
				if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
					b.Fatal(err)
				}
			}
			elapsed += time.Since(start)
			events += sys.TotalStats().EventsProcessed
		}
		report(b, events, elapsed)
	})
}

// ---------------------------------------------------------------------------
// Cache-conscious hot path
// ---------------------------------------------------------------------------

// BenchmarkDegreeAdaptive measures the degree-adaptive adjacency against the
// uniform slab on adversarial stream shapes. Each sub-benchmark churns a
// power-law graph through shape batches (hubchurn tears hub adjacencies down
// and rebuilds them, flashcrowd grows dense neighborhoods), then times the
// event-style read path: scattered point lookups of out-adjacencies — the
// access pattern of a drain round, where distinct cache lines touched per
// lookup dominate, not sequential bandwidth. The sampled targets are the
// low-degree population (degree at or below the inline capacity): in a
// power-law graph that is the bulk of all vertices and exactly the set the
// adaptive layout serves from a single 64-byte record, where the uniform slab
// pays the outPtr, outLen, destination, and weight lines with a dependent
// pointer-to-payload chain. Hub adjacencies live in the slab either way and
// would only dilute the comparison. The inline variant must hold 0 allocs/op
// and beat the slab on ns/op (the bench-hotpath CI job uploads the ratio);
// inline-frac reports how much of the graph the adaptive layout captured.
func BenchmarkDegreeAdaptive(b *testing.B) {
	const nv, ne, lookups = 400000, 2400000, 100000
	for _, kind := range []stream.ShapeKind{stream.HubChurn, stream.FlashCrowd} {
		base := RMAT(RMATConfig{Vertices: nv, Edges: ne, Seed: 1})
		for _, mode := range []string{"inline", "slab"} {
			b.Run(fmt.Sprintf("%s/%s", kind, mode), func(b *testing.B) {
				cfg := graph.DefaultDeltaConfig()
				if mode == "slab" {
					cfg.InlineCap = 0
				}
				cur, err := base.ApplyDeltaCfg(graph.Batch{}, cfg)
				if err != nil {
					b.Fatal(err)
				}
				gen := stream.NewShape(stream.ShapeConfig{Kind: kind, BatchSize: 1000, Seed: 3})
				for i := 0; i < 10; i++ {
					ng, err := cur.ApplyDeltaCfg(gen.Next(cur), cfg)
					if err != nil {
						b.Fatal(err)
					}
					cur = ng
				}
				rng := rand.New(rand.NewSource(5))
				targets := make([]graph.VertexID, 0, lookups)
				for len(targets) < lookups {
					v := graph.VertexID(rng.Intn(nv))
					if cur.OutDegree(v) <= graph.DefaultDeltaConfig().InlineCap {
						targets = append(targets, v)
					}
				}
				var sum float64
				visit := func(dst graph.VertexID, w graph.Weight) { sum += float64(w) }
				out, in, total := cur.RepresentationMix()
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					for _, v := range targets {
						cur.OutEdges(v, visit)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(out+in)/float64(2*total), "inline-frac")
				if sum == 0 {
					b.Fatal("sweep read nothing")
				}
			})
		}
	}
}

// BenchmarkPipelineOverlap measures the wall-clock effect of overlapping the
// functional engine with the detailed timing simulation: the same batch train
// with WithPipelineOverlap off and on. Cycle counts are bitwise-identical by
// contract (the difftests pin that); only ns/op may move.
func BenchmarkPipelineOverlap(b *testing.B) {
	g := RMAT(RMATConfig{Vertices: 20000, Edges: 160000, Seed: 1})
	for _, mode := range []string{"off", "on"} {
		b.Run(mode, func(b *testing.B) {
			sys, err := New(g, SSSP(0), WithDetailedTiming(), WithPipelineOverlap(mode == "on"))
			if err != nil {
				b.Fatal(err)
			}
			sys.RunInitial()
			gen := NewStream(StreamConfig{BatchSize: 200, InsertFrac: 0.7, Seed: 2})
			b.ResetTimer()
			var cycles uint64
			for i := 0; i < b.N; i++ {
				res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
				if err != nil {
					b.Fatal(err)
				}
				cycles += res.Cycles
			}
			b.StopTimer()
			if cycles == 0 {
				b.Fatal("timing model produced zero cycles")
			}
		})
	}
}
