package jetstream

import (
	"testing"
)

func TestPublicAPIQuickstart(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 500, Edges: 4000, Seed: 1})
	sys, err := New(g, SSSP(0), WithTiming(true))
	if err != nil {
		t.Fatal(err)
	}
	init := sys.RunInitial()
	if init.Cycles == 0 || init.Duration <= 0 {
		t.Fatalf("initial run: %+v", init)
	}
	gen := NewStream(StreamConfig{BatchSize: 50, InsertFrac: 0.7, Seed: 2})
	res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles == 0 || res.Cycles >= init.Cycles {
		t.Errorf("batch cycles %d should be positive and below cold start %d", res.Cycles, init.Cycles)
	}
	if d := sys.Verify(); d != 0 {
		t.Errorf("Verify = %v", d)
	}
	if sys.TotalStats().Cycles != init.Cycles+res.Cycles {
		t.Errorf("total cycles %d != %d + %d", sys.TotalStats().Cycles, init.Cycles, res.Cycles)
	}
}

func TestApplyBeforeInitialRejected(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 100, Edges: 500, Seed: 3})
	sys, _ := New(g, BFS(0))
	if _, err := sys.ApplyBatch(Batch{}); err == nil {
		t.Error("ApplyBatch before RunInitial accepted")
	}
}

func TestCCRequiresSymmetric(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 100, Edges: 500, Seed: 4})
	if _, err := New(g, CC()); err == nil {
		t.Error("asymmetric graph accepted for CC")
	}
	if _, err := New(Symmetrize(g), CC()); err != nil {
		t.Errorf("symmetric graph rejected: %v", err)
	}
}

func TestAllAlgorithmsThroughPublicAPI(t *testing.T) {
	for _, name := range []string{"sssp", "sswp", "bfs", "cc", "pagerank", "adsorption"} {
		t.Run(name, func(t *testing.T) {
			a, err := NewAlgorithm(AlgorithmSpec{Name: name, Eps: 1e-9})
			if err != nil {
				t.Fatal(err)
			}
			g := RMAT(RMATConfig{Vertices: 200, Edges: 1500, Seed: 5})
			var gen *StreamGenerator
			if name == "cc" {
				g = Symmetrize(g)
				gen = NewStream(StreamConfig{BatchSize: 30, InsertFrac: 0.5, Symmetric: true, Seed: 6})
			} else {
				gen = NewStream(StreamConfig{BatchSize: 30, InsertFrac: 0.5, Seed: 6})
			}
			sys, err := New(g, a, WithTiming(false))
			if err != nil {
				t.Fatal(err)
			}
			sys.RunInitial()
			for i := 0; i < 3; i++ {
				if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
					t.Fatal(err)
				}
			}
			tol := 0.0
			if name == "pagerank" || name == "adsorption" {
				tol = 1e-3
			}
			if d := sys.Verify(); d > tol {
				t.Errorf("diverged by %v", d)
			}
		})
	}
}

func TestOptLevelsThroughPublicAPI(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 300, Edges: 2400, Seed: 7})
	for _, opt := range []OptLevel{OptBase, OptVAP, OptDAP} {
		sys, err := New(g, SSWP(0), WithOpt(opt), WithTiming(false))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunInitial()
		gen := NewStream(StreamConfig{BatchSize: 40, InsertFrac: 0.3, Seed: 8})
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
		if d := sys.Verify(); d != 0 {
			t.Errorf("%v: diverged by %v", opt, d)
		}
	}
}

func TestBatchResultStats(t *testing.T) {
	// The web-crawl backbone makes every vertex reachable from 0, so a
	// delete-only batch is guaranteed to hit dependence edges.
	g := WebCrawl(WebCrawlConfig{Vertices: 400, AvgDegree: 5, Seed: 9})
	sys, _ := New(g, SSSP(0))
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 60, InsertFrac: 0, Seed: 10})
	res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.EventsProcessed == 0 {
		t.Error("batch processed no events")
	}
	if res.Stats.VerticesReset == 0 {
		t.Error("delete-only batch reset nothing")
	}
}

func TestWithSlices(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 800, Edges: 6000, Seed: 11})
	sys, _ := New(g, BFS(0), WithSlices(3))
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 40, InsertFrac: 0.5, Seed: 12})
	if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
		t.Fatal(err)
	}
	if d := sys.Verify(); d != 0 {
		t.Errorf("sliced system diverged by %v", d)
	}
	if sys.TotalStats().SpillBytes == 0 {
		t.Error("sliced system spilled nothing")
	}
}

func TestDetailedTimingThroughPublicAPI(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 300, Edges: 2400, Seed: 13})
	det, _ := New(g, SSSP(0), WithDetailedTiming())
	fast, _ := New(g, SSSP(0))
	dres := det.RunInitial()
	fres := fast.RunInitial()
	if dres.Cycles == 0 || fres.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	gen := NewStream(StreamConfig{BatchSize: 40, InsertFrac: 0.6, Seed: 14})
	b := gen.Next(det.Graph())
	if _, err := det.ApplyBatch(b); err != nil {
		t.Fatal(err)
	}
	if d := det.Verify(); d != 0 {
		t.Errorf("detailed-timing system diverged by %v", d)
	}
}
