package jetstream

// Window cost benchmarks. BenchmarkWindowExpiry is the acceptance check for
// the O(expired edges) claim: per-batch expiry cost must stay flat as the
// live edge set (and the ring's epoch count) grows, because Expire touches
// only the draining buckets — never the whole window. BenchmarkAdversarialShapes
// measures the full windowed system under each adversarial stream shape.

import (
	"fmt"
	"testing"

	"jetstream/internal/graph"
	"jetstream/internal/stream"
	"jetstream/internal/window"
)

// BenchmarkWindowExpiry drives the ring directly in steady state: a fixed
// 256-edge cohort arrives per epoch and the same-sized cohort expires, while
// the live set is held at 10k/40k/160k edges by scaling the TTL. Flat ns/op
// across the sizes is the O(expired) property; expired/op is reported so a
// regression that silently expires nothing cannot masquerade as fast.
func BenchmarkWindowExpiry(b *testing.B) {
	const cohort = 256
	for _, live := range []int{10_000, 40_000, 160_000} {
		b.Run(fmt.Sprintf("live%d", live), func(b *testing.B) {
			ttl := live / cohort
			r, err := window.New(ttl)
			if err != nil {
				b.Fatal(err)
			}
			nextID := uint32(0)
			mkBatch := func() graph.Batch {
				ins := make([]graph.Edge, cohort)
				for i := range ins {
					ins[i] = graph.Edge{Src: nextID >> 12, Dst: nextID & 0xfff, Weight: 1}
					nextID++
				}
				return graph.Batch{Inserts: ins}
			}
			// Fill the window: one cohort per epoch up to the TTL.
			epoch := uint64(0)
			for e := 0; e < ttl; e++ {
				epoch++
				r.Expire(epoch, nil)
				r.Record(epoch, mkBatch())
			}
			b.ResetTimer()
			var expired int
			for i := 0; i < b.N; i++ {
				epoch++
				expired += len(r.Expire(epoch, nil))
				r.Record(epoch, mkBatch())
			}
			b.ReportMetric(float64(expired)/float64(b.N), "expired/op")
			b.ReportMetric(float64(r.Len()), "live-edges")
		})
	}
}

// BenchmarkAdversarialShapes streams each adversarial shape through a full
// windowed system (functional engine, sequential) and reports per-batch cost
// and the average expiry volume the shape provokes.
func BenchmarkAdversarialShapes(b *testing.B) {
	for _, kind := range stream.Shapes() {
		b.Run(kind.String(), func(b *testing.B) {
			g := RMAT(RMATConfig{Vertices: 2000, Edges: 8000, Seed: 3})
			sys, err := New(g, SSSP(0), WithTiming(false), WithParallelism(1), WithWindow(4))
			if err != nil {
				b.Fatal(err)
			}
			sys.RunInitial()
			gen := stream.NewShape(stream.ShapeConfig{
				Kind: kind, BatchSize: 200, MaxWeight: 8, Period: 4, Seed: 9,
			})
			b.ResetTimer()
			var expired uint64
			for i := 0; i < b.N; i++ {
				res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
				if err != nil {
					b.Fatalf("batch %d: %v", i, err)
				}
				expired += res.Expired
			}
			b.ReportMetric(float64(expired)/float64(b.N), "expired/op")
		})
	}
}
