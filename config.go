package jetstream

import (
	"fmt"

	"jetstream/internal/wal"
)

// Config is the declarative, plain-data twin of the option list New accepts:
// every wire-expressible option has exactly one field here, every field
// round-trips through JSON, and Config.Options / ConfigFromOptions are
// inverses (an exhaustiveness test enforces that a new Option cannot ship
// without a Config field or an explicit runtime-only exemption). It exists so
// a System can be declared over the wire — a service create-tenant request
// carries {graph, algorithm, config} as data, not code.
//
// Enumerated knobs use their command-line spellings ("dap", "strict",
// "batch") rather than internal integer constants, so a JSON document reads
// the way the flags do and an out-of-range integer cannot alias a valid
// level. The zero Config is valid: it selects the library defaults except
// that Timing is off — the right default for a functional streaming service;
// DefaultConfig() reproduces the library's constructor defaults exactly
// (timing on) for callers who want the simulator behavior.
//
// Runtime-only options have no Config field by design: WithAccelerator (a
// struct of hardware parameters, not tenant policy), WithObserver (a live
// callback), and the WAL filesystem override (fault-injection hook). They
// remain available to code via New's option list, which Config.Options
// composes with.
type Config struct {
	// Opt selects the deletion-recovery optimization: "base", "vap", or
	// "dap" ("" = "dap", the library default).
	Opt string `json:"opt,omitempty"`
	// Slices partitions the graph into k slices; 0 or 1 disables slicing.
	Slices int `json:"slices,omitempty"`
	// Timing enables the cycle-accurate timing model. Unlike New (whose
	// default is on), the zero Config leaves it off.
	Timing bool `json:"timing,omitempty"`
	// DetailedTiming selects the per-event pipeline timing model.
	DetailedTiming bool `json:"detailed_timing,omitempty"`
	// PipelineOverlap overlaps functional compute with the cycle simulation
	// when Timing is on (see WithPipelineOverlap). No effect otherwise.
	PipelineOverlap bool `json:"pipeline_overlap,omitempty"`
	// Parallelism shards the functional compute phases across p workers;
	// 0 keeps the engine default.
	Parallelism int `json:"parallelism,omitempty"`
	// Ingest is the invalid-update policy: "strict" or "repair"
	// ("" = "strict").
	Ingest string `json:"ingest,omitempty"`
	// RebuildGraph applies every batch by rebuilding the full CSR instead of
	// the incremental slack-based mutation (see WithGraphRebuild).
	RebuildGraph bool `json:"rebuild_graph,omitempty"`
	// InlineDegree tunes the degree-adaptive adjacency layout: 0 default (4),
	// -1 uniform slab, 1..4 explicit threshold (see WithInlineDegree).
	InlineDegree int `json:"inline_degree,omitempty"`
	// WindowTTL bounds every edge's lifetime to this many batches; 0 means
	// infinite retention (see WithWindow).
	WindowTTL int `json:"window_ttl,omitempty"`

	// WALDir attaches a write-ahead log in this directory; empty disables
	// journaling (and the other WAL fields must then be zero).
	WALDir string `json:"wal_dir,omitempty"`
	// WALSync is the fsync cadence: "batch", "interval", or "none"
	// ("" = "batch"). Only meaningful with WALDir set.
	WALSync string `json:"wal_sync,omitempty"`
	// WALSyncInterval is the batch count between fsyncs under "interval".
	WALSyncInterval int `json:"wal_sync_interval,omitempty"`

	// WatchdogEvery runs the divergence watchdog every N batches; 0 disables
	// it (see WithWatchdog).
	WatchdogEvery int `json:"watchdog_every,omitempty"`
	// WatchdogEpsilon is the divergence threshold that triggers fallback.
	WatchdogEpsilon float64 `json:"watchdog_epsilon,omitempty"`
	// WatchdogSample caps how many vertices each check verifies; 0 checks all.
	WatchdogSample int `json:"watchdog_sample,omitempty"`
}

// DefaultConfig returns the library constructor defaults as data — the exact
// configuration New applies with no options, timing model included.
func DefaultConfig() Config { return ConfigFromOptions() }

// optLevelName is the wire spelling of an optimization level.
func optLevelName(o OptLevel) string {
	switch o {
	case OptBase:
		return "base"
	case OptVAP:
		return "vap"
	default:
		return "dap"
	}
}

// parseOptLevel resolves the wire spelling ("" selects the default).
func parseOptLevel(name string) (OptLevel, error) {
	switch name {
	case "", "dap":
		return OptDAP, nil
	case "vap":
		return OptVAP, nil
	case "base":
		return OptBase, nil
	default:
		return 0, fmt.Errorf("unknown opt level %q (want base, vap, or dap)", name)
	}
}

// parseIngest resolves the wire spelling ("" selects the default).
func parseIngest(name string) (IngestPolicy, error) {
	switch name {
	case "", "strict":
		return Strict, nil
	case "repair":
		return Repair, nil
	default:
		return 0, fmt.Errorf("unknown ingest policy %q (want strict or repair)", name)
	}
}

// Options lowers the Config to the option list New accepts, so
// New(g, a, cfg.Options()...) constructs the declared System. Invalid field
// values (an unknown enum spelling, WAL knobs without WALDir) are not
// reported here — options cannot fail — but are recorded and surface from
// New (and from Validate) wrapped in ErrConfigConflict.
func (c Config) Options() []Option {
	opts := []Option{
		func(op *options) {
			o, err := parseOptLevel(c.Opt)
			if err != nil {
				op.fail(fmt.Errorf("config: %w", err))
				return
			}
			op.opt = o
		},
		func(op *options) {
			p, err := parseIngest(c.Ingest)
			if err != nil {
				op.fail(fmt.Errorf("config: %w", err))
				return
			}
			op.ingest = p
		},
		WithTiming(c.Timing),
	}
	// Negative counts are inert to the option setters (they read as "use the
	// default"), but as wire data they are declarations of nonsense — record
	// them so New rejects instead of silently ignoring.
	for _, bad := range []struct {
		field string
		v     int
	}{
		{"slices", c.Slices}, {"parallelism", c.Parallelism},
		{"window_ttl", c.WindowTTL}, {"wal_sync_interval", c.WALSyncInterval},
	} {
		if bad.v < 0 {
			field, v := bad.field, bad.v
			opts = append(opts, func(op *options) {
				op.fail(fmt.Errorf("config: %s %d must be non-negative", field, v))
			})
		}
	}
	if c.Slices != 0 {
		opts = append(opts, WithSlices(c.Slices))
	}
	if c.DetailedTiming {
		opts = append(opts, WithDetailedTiming())
	}
	if c.PipelineOverlap {
		opts = append(opts, WithPipelineOverlap(true))
	}
	if c.InlineDegree != 0 {
		opts = append(opts, WithInlineDegree(c.InlineDegree))
	}
	if c.Parallelism != 0 {
		opts = append(opts, WithParallelism(c.Parallelism))
	}
	if c.RebuildGraph {
		opts = append(opts, WithGraphRebuild())
	}
	if c.WindowTTL != 0 {
		opts = append(opts, WithWindow(c.WindowTTL))
	}
	if c.WALDir != "" {
		dir := c.WALDir
		sync := c.WALSync
		interval := c.WALSyncInterval
		opts = append(opts, func(op *options) {
			pol, err := wal.ParseSyncPolicy(sync)
			if err != nil {
				op.fail(fmt.Errorf("config: %w", err))
				return
			}
			op.walDir = dir
			op.walOpts.Sync = pol
			op.walOpts.Interval = interval
		})
	} else if c.WALSync != "" || c.WALSyncInterval != 0 {
		opts = append(opts, func(op *options) {
			op.fail(fmt.Errorf("config: wal_sync/wal_sync_interval set without wal_dir"))
		})
	}
	if c.WatchdogEvery != 0 || c.WatchdogEpsilon != 0 || c.WatchdogSample != 0 {
		opts = append(opts, WithWatchdog(WatchdogConfig{
			Every:   c.WatchdogEvery,
			Epsilon: c.WatchdogEpsilon,
			Sample:  c.WatchdogSample,
		}))
	}
	return opts
}

// ConfigFromOptions raises an option list back to its declarative form: the
// Config describing exactly the System New would build from opts. The result
// is canonical — enum fields carry their explicit spellings ("dap",
// "strict"), never "" — so ConfigFromOptions(cfg.Options()...) is a fixed
// point and two option lists describing the same System compare equal as
// Configs. Runtime-only options (WithAccelerator, WithObserver, a WAL FS
// override) have no data representation and are dropped.
func ConfigFromOptions(opts ...Option) Config {
	op := newOptions()
	for _, o := range opts {
		o(op)
	}
	cfg := Config{
		Opt:             optLevelName(op.opt),
		Slices:          op.slices,
		Timing:          op.timing,
		DetailedTiming:  op.detailed,
		PipelineOverlap: op.pipeline,
		Parallelism:     op.parallel,
		Ingest:          op.ingest.String(),
		RebuildGraph:    op.rebuild,
		InlineDegree:    op.inlineDeg,
		WindowTTL:       op.window,
		WatchdogEvery:   op.watchdog.Every,
		WatchdogEpsilon: op.watchdog.Epsilon,
		WatchdogSample:  op.watchdog.Sample,
	}
	if op.walDir != "" {
		cfg.WALDir = op.walDir
		cfg.WALSync = op.walOpts.Sync.String()
		cfg.WALSyncInterval = op.walOpts.Interval
	}
	return cfg
}

// Validate reports whether the Config can construct a System, without
// building one: it catches bad enum spellings, orphaned WAL knobs, and the
// option conflicts New itself enforces (parallelism vs timing/slices,
// negative window TTL). Services use it to turn a bad tenant declaration
// into a 4xx before any allocation happens. The returned error wraps
// ErrConfigConflict.
func (c Config) Validate() error {
	op := newOptions()
	for _, o := range c.Options() {
		o(op)
	}
	if op.err != nil {
		return fmt.Errorf("%w: %w", ErrConfigConflict, op.err)
	}
	if op.parallel > 1 {
		if op.timing {
			return fmt.Errorf("%w: parallelism %d requires the timing model off", ErrConfigConflict, op.parallel)
		}
		if op.slices > 1 {
			return fmt.Errorf("%w: parallelism %d cannot be combined with %d slices", ErrConfigConflict, op.parallel, op.slices)
		}
	}
	return nil
}
