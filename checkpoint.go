package jetstream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"jetstream/internal/algo"
	"jetstream/internal/graph"
	"jetstream/internal/stats"
	"jetstream/internal/window"
)

// Checkpoint format: an 8-byte magic, a format version, the payload length,
// the payload, and a trailing CRC64 (ECMA) over the payload. The payload
// carries everything needed to resume the standing query exactly — algorithm
// identity and parameters, configuration, graph version, per-vertex state and
// dependency fields, cumulative counters and cycles, and the batch count that
// drives the watchdog cadence.
//
// Microarchitectural timing state (cache contents, DRAM row buffers) is
// deliberately not checkpointed: it affects only the cycle estimate of future
// batches, never results. Accumulated cycles resume via a base offset.
var (
	ckptMagic = [8]byte{'J', 'S', 'C', 'K', 'P', 'T', '0', '1'}

	// ErrCorruptCheckpoint is wrapped by every Restore error caused by a
	// damaged or truncated checkpoint (bad magic, short payload, checksum
	// mismatch, or inconsistent contents).
	ErrCorruptCheckpoint = errors.New("jetstream: corrupt checkpoint")

	// ErrTruncated additionally wraps the subset of corruption caused by
	// missing bytes at the end of the input: a short header, a payload the
	// reader ran out of, or a missing checksum — the shape a torn write or
	// interrupted download leaves behind. Callers that maintain their own
	// redundancy can match it to distinguish "fetch or replay more"
	// (errors.Is(err, ErrTruncated)) from in-place damage, which only
	// matches ErrCorruptCheckpoint and means the blob must be discarded.
	ErrTruncated = errors.New("jetstream: truncated checkpoint")
)

// truncErr builds an error matching both ErrCorruptCheckpoint and
// ErrTruncated, for damage that presents as missing tail bytes.
func truncErr(format string, args ...any) error {
	return fmt.Errorf("%w: %w: "+format, append([]any{ErrCorruptCheckpoint, ErrTruncated}, args...)...)
}

// Version 2 added the Parallelism knob to the recorded configuration;
// version 3 added the graph-rebuild ablation flag (WithGraphRebuild);
// version 4 added the write-ahead-log binding (a presence flag and the log
// position the snapshot covers), making a checkpoint the snapshot half of an
// incremental (snapshot, log tail) pair — see RecoverFromDir; version 5
// added the sliding-window section (WithWindow): the TTL and every live
// edge's insertion epoch, so a restored system expires exactly the epochs an
// uninterrupted run would. Restore reads versions 2 through 5. The graph
// itself is always serialized canonically via Edges(), so the slack layout
// of an incrementally mutated CSR never leaks into the format: a restored
// system re-slacks lazily on its first delta batch.
const (
	ckptVersion    uint32 = 5
	ckptMinVersion uint32 = 2
)

var ckptCRC = crc64.MakeTable(crc64.ECMA)

// counterFields fixes the serialization order of the counter set; both
// directions of the codec share it.
func counterFields(c *stats.Counters) []*uint64 {
	return []*uint64{
		&c.EventsProcessed, &c.EventsGenerated, &c.EventsCoalesced,
		&c.VertexReads, &c.VertexWrites, &c.EdgeReads,
		&c.VerticesReset, &c.RequestsIssued, &c.DeletesDiscarded,
		&c.Rounds, &c.Phases,
		&c.BytesTransferred, &c.BytesUsed, &c.DRAMAccesses, &c.RowHits, &c.SpillBytes,
		&c.UpdatesDropped, &c.BatchesRepaired, &c.FaultsInjected,
		&c.TransfersRetried, &c.TransfersAborted, &c.ColdStartFallbacks,
		&c.Cycles,
	}
}

type ckptWriter struct {
	buf bytes.Buffer
}

func (w *ckptWriter) u8(v uint8) { w.buf.WriteByte(v) }
func (w *ckptWriter) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.buf.Write(b[:])
}
func (w *ckptWriter) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.buf.Write(b[:])
}
func (w *ckptWriter) f64(v float64) { w.u64(math.Float64bits(v)) }
func (w *ckptWriter) str(s string)  { w.u32(uint32(len(s))); w.buf.WriteString(s) }

type ckptReader struct {
	b []byte
}

func (r *ckptReader) need(n int) ([]byte, error) {
	if len(r.b) < n {
		return nil, fmt.Errorf("%w: payload truncated", ErrCorruptCheckpoint)
	}
	out := r.b[:n]
	r.b = r.b[n:]
	return out, nil
}

func (r *ckptReader) u8() (uint8, error) {
	b, err := r.need(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *ckptReader) u32() (uint32, error) {
	b, err := r.need(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *ckptReader) u64() (uint64, error) {
	b, err := r.need(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (r *ckptReader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *ckptReader) str() (string, error) {
	n, err := r.u32()
	if err != nil {
		return "", err
	}
	if uint64(n) > uint64(len(r.b)) {
		return "", fmt.Errorf("%w: string length %d exceeds payload", ErrCorruptCheckpoint, n)
	}
	b, _ := r.need(int(n))
	return string(b), nil
}

// Checkpoint serializes the System's full resumable state to w: a Restore of
// the stream continues exactly where this one stands, with identical
// per-vertex state and cumulative counters. Systems running kernels that
// cannot be reconstructed by name (custom Algorithm implementations,
// LinSolve) return an error. Custom accelerator configurations passed via
// WithAccelerator are not serialized; pass the same option to Restore.
func (s *System) Checkpoint(w io.Writer) error {
	if err := s.acquire("Checkpoint"); err != nil {
		return err
	}
	defer s.release()
	return s.checkpointLocked(w)
}

// checkpointLocked is Checkpoint without the single-writer guard, for callers
// already inside a guarded operation — writeSnapshot runs under ApplyBatch's
// journaling step or under Compact, both of which hold the guard.
func (s *System) checkpointLocked(w io.Writer) error {
	if !s.init {
		return fmt.Errorf("jetstream: cannot checkpoint before RunInitial")
	}
	name, root, eps, err := algo.Params(s.alg)
	if err != nil {
		return fmt.Errorf("jetstream: checkpoint: %w", err)
	}

	var p ckptWriter
	p.str(name)
	p.u32(root)
	p.f64(eps)

	// Configuration recorded by New (accelerator overrides excluded).
	p.u32(uint32(s.cfg.Opt))
	p.u32(uint32(s.cfg.Slices))
	boolByte := func(b bool) uint8 {
		if b {
			return 1
		}
		return 0
	}
	p.u8(boolByte(s.cfg.Engine.Timing))
	p.u8(boolByte(s.cfg.Engine.DetailedTiming))
	p.u8(boolByte(s.cfg.RebuildGraph))
	p.u32(uint32(s.cfg.Engine.Parallelism))
	p.u32(uint32(s.ingest))
	p.u64(uint64(s.wd.Every))
	p.f64(s.wd.Epsilon)
	p.u64(uint64(s.wd.Sample))

	// Stream position.
	p.u64(s.batches)
	p.u64(s.js.Cycles())

	// Counter snapshots: cumulative totals and the last delta() baseline.
	st := *s.st
	fields := counterFields(&st)
	p.u32(uint32(len(fields)))
	for _, f := range fields {
		p.u64(*f)
	}
	prev := s.prev
	for _, f := range counterFields(&prev) {
		p.u64(*f)
	}

	// Graph version, in the canonical edge encoding shared with the WAL.
	g := s.js.Graph()
	p.u64(uint64(g.NumVertices()))
	edges := g.Edges()
	p.u64(uint64(len(edges)))
	var eb [graph.EdgeSize]byte
	for _, e := range edges {
		graph.PutEdge(eb[:], e)
		p.buf.Write(eb[:])
	}

	// Per-vertex engine state and dependency fields.
	state := s.js.State()
	p.u64(uint64(len(state)))
	for _, v := range state {
		p.f64(v)
	}
	dep := s.js.Engine().Dep()
	p.u64(uint64(len(dep)))
	for _, d := range dep {
		p.u32(d)
	}

	// v4: the WAL binding — whether this System journals to a write-ahead
	// log, and the log position (batch sequence number) the snapshot covers.
	// Recovery replays only records past this position.
	p.u8(boolByte(s.wal != nil))
	p.u64(s.batches)

	// v5: the sliding window — TTL and the live (src, dst, insertion epoch)
	// entries in canonical (src,dst) order. The expiry frontier is derived
	// from the batch count, so it is not serialized.
	p.u8(boolByte(s.win != nil))
	if s.win != nil {
		p.u32(uint32(s.win.TTL()))
		entries := s.win.Entries()
		p.u64(uint64(len(entries)))
		for _, en := range entries {
			p.u32(uint32(en.Src))
			p.u32(uint32(en.Dst))
			p.u64(en.Epoch)
		}
	}

	payload := p.buf.Bytes()
	var hdr ckptWriter
	hdr.buf.Write(ckptMagic[:])
	hdr.u32(ckptVersion)
	hdr.u64(uint64(len(payload)))
	if _, err := w.Write(hdr.buf.Bytes()); err != nil {
		return fmt.Errorf("jetstream: checkpoint: %w", err)
	}
	if _, err := w.Write(payload); err != nil {
		return fmt.Errorf("jetstream: checkpoint: %w", err)
	}
	var tail ckptWriter
	tail.u64(crc64.Checksum(payload, ckptCRC))
	if _, err := w.Write(tail.buf.Bytes()); err != nil {
		return fmt.Errorf("jetstream: checkpoint: %w", err)
	}
	return nil
}

// Restore rebuilds a System from a checkpoint written by Checkpoint and
// resumes the stream exactly: the next ApplyBatch continues from the stored
// graph version with bit-identical per-vertex state. Damaged input is
// rejected with an error wrapping ErrCorruptCheckpoint and never yields a
// partially restored System. Options in opts are applied on top of the
// recorded configuration (e.g. WithAccelerator, which is not serialized);
// overriding the optimization level of a checkpoint that recorded dependency
// tracking is rejected.
func Restore(r io.Reader, opts ...Option) (*System, error) {
	hdr := make([]byte, len(ckptMagic)+4+8)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return nil, truncErr("short header: %v", err)
	}
	if !bytes.Equal(hdr[:len(ckptMagic)], ckptMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorruptCheckpoint)
	}
	version := binary.LittleEndian.Uint32(hdr[len(ckptMagic):])
	if version < ckptMinVersion || version > ckptVersion {
		return nil, fmt.Errorf("%w: unsupported format version %d (this build reads %d through %d)",
			ErrCorruptCheckpoint, version, ckptMinVersion, ckptVersion)
	}
	plen := binary.LittleEndian.Uint64(hdr[len(ckptMagic)+4:])
	const maxPayload = 1 << 40
	if plen > maxPayload {
		return nil, fmt.Errorf("%w: implausible payload length %d", ErrCorruptCheckpoint, plen)
	}
	payload := make([]byte, plen)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, truncErr("short payload: %v", err)
	}
	var tail [8]byte
	if _, err := io.ReadFull(r, tail[:]); err != nil {
		return nil, truncErr("missing checksum: %v", err)
	}
	if got, want := crc64.Checksum(payload, ckptCRC), binary.LittleEndian.Uint64(tail[:]); got != want {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorruptCheckpoint)
	}

	p := &ckptReader{b: payload}
	name, err := p.str()
	if err != nil {
		return nil, err
	}
	root, err := p.u32()
	if err != nil {
		return nil, err
	}
	eps, err := p.f64()
	if err != nil {
		return nil, err
	}
	alg, err := algo.New(name, root, eps)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}

	opt, err := p.u32()
	if err != nil {
		return nil, err
	}
	slices, err := p.u32()
	if err != nil {
		return nil, err
	}
	timing, err := p.u8()
	if err != nil {
		return nil, err
	}
	detailed, err := p.u8()
	if err != nil {
		return nil, err
	}
	// The graph-rebuild ablation flag exists from v3 on.
	var rebuild uint8
	if version >= 3 {
		if rebuild, err = p.u8(); err != nil {
			return nil, err
		}
	}
	parallel, err := p.u32()
	if err != nil {
		return nil, err
	}
	ingest, err := p.u32()
	if err != nil {
		return nil, err
	}
	wdEvery, err := p.u64()
	if err != nil {
		return nil, err
	}
	wdEps, err := p.f64()
	if err != nil {
		return nil, err
	}
	wdSample, err := p.u64()
	if err != nil {
		return nil, err
	}

	batches, err := p.u64()
	if err != nil {
		return nil, err
	}
	cycles, err := p.u64()
	if err != nil {
		return nil, err
	}

	nc, err := p.u32()
	if err != nil {
		return nil, err
	}
	var st, prev stats.Counters
	if int(nc) != len(counterFields(&st)) {
		return nil, fmt.Errorf("%w: counter set size %d, want %d", ErrCorruptCheckpoint, nc, len(counterFields(&st)))
	}
	for _, f := range counterFields(&st) {
		if *f, err = p.u64(); err != nil {
			return nil, err
		}
	}
	for _, f := range counterFields(&prev) {
		if *f, err = p.u64(); err != nil {
			return nil, err
		}
	}

	nv, err := p.u64()
	if err != nil {
		return nil, err
	}
	ne, err := p.u64()
	if err != nil {
		return nil, err
	}
	// Both counts are bounded by the bytes actually present before anything
	// is allocated: ne edges of EdgeSize each, then nv per-vertex states of
	// 8 bytes each, must all fit in the remaining payload. An adversarial
	// count can therefore never provoke a huge allocation.
	if nv > math.MaxInt32 || ne > uint64(len(p.b))/graph.EdgeSize ||
		ne*graph.EdgeSize+nv*8 > uint64(len(p.b)) {
		return nil, fmt.Errorf("%w: implausible graph dimensions (%d vertices, %d edges, %d payload bytes left)", ErrCorruptCheckpoint, nv, ne, len(p.b))
	}
	edges := make([]graph.Edge, ne)
	for i := range edges {
		eb, err := p.need(graph.EdgeSize)
		if err != nil {
			return nil, err
		}
		edges[i] = graph.GetEdge(eb)
	}
	g, err := graph.Build(int(nv), edges)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, err)
	}

	ns, err := p.u64()
	if err != nil {
		return nil, err
	}
	if ns != nv {
		return nil, fmt.Errorf("%w: state length %d for %d vertices", ErrCorruptCheckpoint, ns, nv)
	}
	state := make([]float64, ns)
	for i := range state {
		if state[i], err = p.f64(); err != nil {
			return nil, err
		}
	}
	nd, err := p.u64()
	if err != nil {
		return nil, err
	}
	if nd != 0 && nd != nv {
		return nil, fmt.Errorf("%w: dependency length %d for %d vertices", ErrCorruptCheckpoint, nd, nv)
	}
	dep := make([]graph.VertexID, nd)
	for i := range dep {
		if dep[i], err = p.u32(); err != nil {
			return nil, err
		}
	}
	// v4: the WAL binding. The recorded log position must agree with the
	// recorded batch count — they are written from the same field, so a
	// mismatch can only mean in-place damage that slipped past the CRC.
	if version >= 4 {
		hadWAL, err := p.u8()
		if err != nil {
			return nil, err
		}
		if hadWAL > 1 {
			return nil, fmt.Errorf("%w: WAL flag %d", ErrCorruptCheckpoint, hadWAL)
		}
		walSeq, err := p.u64()
		if err != nil {
			return nil, err
		}
		if walSeq != batches {
			return nil, fmt.Errorf("%w: log position %d disagrees with batch count %d", ErrCorruptCheckpoint, walSeq, batches)
		}
	}
	// v5: the sliding-window section. Entry counts are bounded by the bytes
	// actually present (16 bytes each) before anything is allocated.
	var winTTL uint32
	var winEntries []window.Entry
	if version >= 5 {
		hasWin, err := p.u8()
		if err != nil {
			return nil, err
		}
		if hasWin > 1 {
			return nil, fmt.Errorf("%w: window flag %d", ErrCorruptCheckpoint, hasWin)
		}
		if hasWin == 1 {
			if winTTL, err = p.u32(); err != nil {
				return nil, err
			}
			nw, err := p.u64()
			if err != nil {
				return nil, err
			}
			if nw*16 > uint64(len(p.b)) {
				return nil, fmt.Errorf("%w: %d window entries exceed %d payload bytes left", ErrCorruptCheckpoint, nw, len(p.b))
			}
			winEntries = make([]window.Entry, nw)
			for i := range winEntries {
				src, err := p.u32()
				if err != nil {
					return nil, err
				}
				dst, err := p.u32()
				if err != nil {
					return nil, err
				}
				ep, err := p.u64()
				if err != nil {
					return nil, err
				}
				winEntries[i] = window.Entry{Src: graph.VertexID(src), Dst: graph.VertexID(dst), Epoch: ep}
			}
			if winTTL == 0 {
				return nil, fmt.Errorf("%w: window TTL 0", ErrCorruptCheckpoint)
			}
		}
	}
	if len(p.b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorruptCheckpoint, len(p.b))
	}

	all := []Option{
		WithOpt(OptLevel(opt)),
		WithSlices(int(slices)),
		WithTiming(timing != 0),
		WithIngest(IngestPolicy(ingest)),
		WithWatchdog(WatchdogConfig{Every: int(wdEvery), Epsilon: wdEps, Sample: int(wdSample)}),
	}
	// Old checkpoints record the configured parallelism even when timing or
	// slicing kept it inert; passing it back through WithParallelism would now
	// trip ErrConfigConflict, so only replay it when it could have engaged and
	// restore the recorded value directly otherwise.
	replayParallel := timing == 0 && slices <= 1
	if replayParallel {
		all = append(all, WithParallelism(int(parallel)))
	}
	if detailed != 0 {
		all = append(all, WithDetailedTiming())
	}
	if rebuild != 0 {
		all = append(all, WithGraphRebuild())
	}
	all = append(all, opts...)
	sys, err := New(g, alg, all...)
	if err != nil {
		// With no caller options the recorded configuration alone failed to
		// reconstruct — that is checkpoint damage (CRC-validated bytes can
		// still encode e.g. an asymmetric graph for a symmetric kernel), so
		// the error carries the corruption type. With caller options the
		// conflict may be theirs; surface the plain cause.
		if len(opts) == 0 {
			return nil, fmt.Errorf("%w: recorded configuration does not reconstruct: %w", ErrCorruptCheckpoint, err)
		}
		return nil, fmt.Errorf("jetstream: restore: %w", err)
	}
	if !replayParallel {
		sys.cfg.Engine.Parallelism = int(parallel)
	}

	engDep := sys.js.Engine().Dep()
	if engDep != nil && len(dep) == 0 {
		if len(opts) == 0 {
			return nil, fmt.Errorf("%w: recorded options enable dependency tracking but the checkpoint recorded no dependency state", ErrCorruptCheckpoint)
		}
		return nil, fmt.Errorf("jetstream: restore: options enable dependency tracking but the checkpoint recorded none")
	}
	copy(sys.js.State(), state)
	if engDep != nil {
		copy(engDep, dep)
	}
	// A recorded window overrides whatever WithWindow (if any) the caller
	// passed: the ring's ages are state, not configuration. Without a
	// recorded window, a caller-passed WithWindow stands — New seeded it from
	// the restored graph, so the window starts at the restored position.
	if winTTL > 0 {
		ring, werr := window.FromEntries(int(winTTL), batches, winEntries)
		if werr != nil {
			return nil, fmt.Errorf("%w: %v", ErrCorruptCheckpoint, werr)
		}
		sys.win = ring
		sys.expiredC = sys.reg.Counter("jetstream_window_expired_edges_total")
	} else if sys.win != nil {
		// Caller attached a fresh window mid-stream: re-seed it at the
		// restored batch count so the pre-existing edges live a full TTL from
		// here (New seeded them at epoch 0, which is batches-old history).
		ring, werr := window.New(sys.win.TTL())
		if werr != nil {
			return nil, fmt.Errorf("jetstream: restore: %w", werr)
		}
		ring.Seed(batches, sys.js.Graph().Edges())
		sys.win = ring
	}
	*sys.st = st
	sys.prev = prev
	sys.batches = batches
	sys.js.SetCycleBase(cycles)
	sys.init = true
	return sys, nil
}

// RestoreOrColdStart attempts Restore and, when the checkpoint is damaged or
// unreadable, falls back to a fresh cold-start evaluation of query a over g —
// the recovery of last resort, mirroring the watchdog's fallback. The
// returned bool reports whether the checkpoint was restored (true) or the
// fallback ran (false); the fallback is counted in ColdStartFallbacks.
func RestoreOrColdStart(r io.Reader, g *Graph, a Algorithm, opts ...Option) (*System, bool, error) {
	if sys, err := Restore(r, opts...); err == nil {
		return sys, true, nil
	}
	sys, err := New(g, a, opts...)
	if err != nil {
		return nil, false, err
	}
	sys.st.ColdStartFallbacks++
	sys.RunInitial()
	return sys, false, nil
}
