package jetstream

// Mid-window durability: the sliding window must survive both durability
// paths — the checkpoint (format v5 serializes the epoch ring) and WAL crash
// recovery (the journal holds user batches only; expiry is re-derived
// deterministically during replay). The crashpoint sweep kills the disk at
// swept byte offsets while a window is actively expiring edges and asserts a
// recovered session is bitwise-identical to the uninterrupted one — graph,
// state, and every subsequent expiry decision.

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"jetstream/internal/fault"
	"jetstream/internal/stream"
)

var windowRecoveryKernels = []struct {
	name string
	alg  func() Algorithm
	sym  bool
}{
	{"sssp", func() Algorithm { return SSSP(0) }, false},
	{"wcc", func() Algorithm { return WCC() }, true},
}

const winRecTTL = 2

// recordWindowRecoveryRun draws n adversarial batches against an evolving
// windowed system and returns the batch list plus, for every prefix k, the
// reference state, graph, and per-batch expired count of an uninterrupted run.
func recordWindowRecoveryRun(t *testing.T, alg Algorithm, sym bool, n int) (batches []Batch, states [][]float64, graphs []*Graph, expired []uint64) {
	t.Helper()
	g := durGraph(sym)
	sys, err := New(g, alg, durOpts(WithWindow(winRecTTL))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := stream.NewShape(stream.ShapeConfig{
		Kind: stream.HubChurn, BatchSize: 16, MaxWeight: 8, Symmetric: sym, Seed: 57,
	})
	states = append(states, sys.State())
	graphs = append(graphs, sys.Graph())
	expired = append(expired, 0)
	for i := 0; i < n; i++ {
		b := gen.Next(sys.Graph())
		res, err := sys.ApplyBatch(b)
		if err != nil {
			t.Fatalf("reference batch %d: %v", i+1, err)
		}
		batches = append(batches, b)
		states = append(states, sys.State())
		graphs = append(graphs, sys.Graph())
		expired = append(expired, res.Expired)
	}
	// The run must actually exercise expiry, or the sweep proves nothing.
	total := uint64(0)
	for _, e := range expired {
		total += e
	}
	if total == 0 {
		t.Fatal("recorded run never expired an edge; the sweep would be vacuous")
	}
	return batches, states, graphs, expired
}

// TestWindowCrashpointSweep kills the disk at swept cumulative offsets while
// the window is mid-expiry, recovers from the real directory, and asserts the
// recovered session (a) lands bitwise on the uninterrupted reference at the
// last durable batch and (b) continues the stream with identical expiry
// decisions and states through the end.
func TestWindowCrashpointSweep(t *testing.T) {
	const n = 6
	for _, k := range windowRecoveryKernels {
		t.Run(k.name, func(t *testing.T) {
			batches, refStates, refGraphs, refExpired := recordWindowRecoveryRun(t, k.alg(), k.sym, n)

			// Layout run: same stream through a fault-free WAL to map batch
			// boundaries to cumulative byte offsets.
			layoutDir := t.TempDir()
			lsys, err := New(durGraph(k.sym), k.alg(), durOpts(WithWindow(winRecTTL), WithWAL(layoutDir))...)
			if err != nil {
				t.Fatal(err)
			}
			lsys.RunInitial()
			var recEnd []int64
			for i, b := range batches {
				if _, err := lsys.ApplyBatch(b); err != nil {
					t.Fatalf("layout batch %d: %v", i+1, err)
				}
				recEnd = append(recEnd, lsys.WALSize())
				if !bitwiseEqual(lsys.State(), refStates[i+1]) {
					t.Fatalf("batch %d: WAL run diverged from reference", i+1)
				}
			}
			if err := lsys.Close(); err != nil {
				t.Fatal(err)
			}
			fi, err := os.Stat(filepath.Join(layoutDir, SnapshotName))
			if err != nil {
				t.Fatal(err)
			}
			snapBytes := fi.Size()

			var offsets []int64
			offsets = append(offsets, 0, snapBytes-1)
			prev := int64(0)
			for _, end := range recEnd {
				offsets = append(offsets, snapBytes+(prev+end)/2, snapBytes+end-1, snapBytes+end)
				prev = end
			}

			for _, off := range offsets {
				t.Run(fmt.Sprintf("off%d", off), func(t *testing.T) {
					dir := t.TempDir()
					d := fault.NewDisk(dir, fault.DiskConfig{KillAtByte: off, FlipBitAt: -1, FullAtByte: -1})
					sys, err := New(durGraph(k.sym), k.alg(), durOpts(WithWindow(winRecTTL), WithWALOptions(dir, WALOptions{FS: d}))...)
					if err != nil {
						t.Fatal(err)
					}
					sys.RunInitial()
					applied := 0
					for i := range batches {
						if _, err := sys.ApplyBatch(batches[i]); err != nil {
							break // the crash: the process would be dead here
						}
						applied++
					}

					rec, err := RecoverFromDir(dir)
					if off < snapBytes {
						if err == nil || !errors.Is(err, os.ErrNotExist) {
							t.Fatalf("pre-snapshot kill: recover err = %v, want missing snapshot", err)
						}
						if applied != 0 {
							t.Fatalf("%d batches acknowledged with no durable snapshot", applied)
						}
						return
					}
					if err != nil {
						t.Fatalf("recover: %v", err)
					}
					wantK := 0
					for _, end := range recEnd {
						if snapBytes+end <= off {
							wantK++
						}
					}
					if rec.Batches() != uint64(wantK) {
						t.Fatalf("recovered %d batches, want %d", rec.Batches(), wantK)
					}
					if rec.Window() != winRecTTL {
						t.Fatalf("recovered window TTL %d, want %d", rec.Window(), winRecTTL)
					}
					if !bitwiseEqual(rec.State(), refStates[wantK]) {
						t.Fatalf("recovered state diverges from reference at batch %d", wantK)
					}
					if diff := sameEdges(rec.Graph(), refGraphs[wantK]); diff != "" {
						t.Fatalf("recovered graph diverges at batch %d: %s", wantK, diff)
					}
					// Continue the stream: every remaining batch must expire
					// exactly the epochs the uninterrupted run expired, and
					// land on bitwise-identical state — the proof the epoch
					// ring itself recovered, not just the graph.
					for i := wantK; i < n; i++ {
						res, err := rec.ApplyBatch(batches[i])
						if err != nil {
							t.Fatalf("continuation batch %d: %v", i+1, err)
						}
						if res.Expired != refExpired[i+1] {
							t.Fatalf("continuation batch %d expired %d edges, reference expired %d", i+1, res.Expired, refExpired[i+1])
						}
						if !bitwiseEqual(rec.State(), refStates[i+1]) {
							t.Fatalf("continuation batch %d: state diverges from reference", i+1)
						}
					}
					if err := rec.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
				})
			}
		})
	}
}

// TestCheckpointV5WindowRoundTrip pins the checkpoint linkage directly: a
// mid-window Checkpoint restores to a system whose subsequent expiry schedule
// is identical, batch for batch, to the original's.
func TestCheckpointV5WindowRoundTrip(t *testing.T) {
	batches, refStates, _, refExpired := recordWindowRecoveryRun(t, SSSP(0), false, 6)
	sys, err := New(durGraph(false), SSSP(0), durOpts(WithWindow(winRecTTL))...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	const cut = 3 // mid-window: seeded epochs are gone, recent epochs pending
	for i := 0; i < cut; i++ {
		if _, err := sys.ApplyBatch(batches[i]); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rst, err := Restore(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rst.Window() != winRecTTL {
		t.Fatalf("restored window TTL %d, want %d", rst.Window(), winRecTTL)
	}
	if !bitwiseEqual(rst.State(), refStates[cut]) {
		t.Fatal("restored state differs from reference at the cut")
	}
	for i := cut; i < len(batches); i++ {
		ro, err := rst.ApplyBatch(batches[i])
		if err != nil {
			t.Fatalf("restored batch %d: %v", i+1, err)
		}
		so, err := sys.ApplyBatch(batches[i])
		if err != nil {
			t.Fatalf("original batch %d: %v", i+1, err)
		}
		if ro.Expired != so.Expired || ro.Expired != refExpired[i+1] {
			t.Fatalf("batch %d: restored expired %d, original %d, reference %d", i+1, ro.Expired, so.Expired, refExpired[i+1])
		}
		if !bitwiseEqual(rst.State(), sys.State()) {
			t.Fatalf("batch %d: restored state diverged from original", i+1)
		}
	}
}

// TestRestoreWindowOntoWindowlessCheckpoint covers attaching a window at
// restore time to a checkpoint that never had one: the restored graph's edges
// must be re-seeded at the restored stream position (living a full TTL from
// there), not at epoch 0 — which would expire the whole graph immediately.
func TestRestoreWindowOntoWindowlessCheckpoint(t *testing.T) {
	g := durGraph(false)
	sys, err := New(g, SSSP(0), durOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := durStream(false)
	for i := 0; i < 4; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		t.Fatal(err)
	}
	rst, err := Restore(bytes.NewReader(buf.Bytes()), WithWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	if rst.Window() != 3 {
		t.Fatalf("window TTL %d, want 3", rst.Window())
	}
	edges := uint64(rst.Graph().NumEdges())
	// Batches 5 and 6 (TTL not yet reached from the restore point): nothing
	// may expire. Batch 7 is the seeded cohort's boundary: everything the
	// stream didn't touch since the restore ages out at once.
	for k := 0; k < 2; k++ {
		res, err := rst.ApplyBatch(Batch{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Expired != 0 {
			t.Fatalf("batch %d after restore: %d edges expired before the TTL", k+1, res.Expired)
		}
	}
	res, err := rst.ApplyBatch(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != edges {
		t.Fatalf("TTL boundary expired %d edges, want the whole re-seeded graph (%d)", res.Expired, edges)
	}
}
