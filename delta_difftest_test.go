package jetstream

// Differential harness for the incremental mutation path: the same batch
// stream is replayed through the default delta-applying system and through a
// system pinned to the full-rebuild reference path (WithGraphRebuild). The
// two runs must agree bitwise — both operate on the same logical graph
// content, so the event timelines are identical and no tolerance is needed,
// even for the accumulative kernels.

import (
	"testing"

	"jetstream/internal/algo"
)

// TestDeltaVsRebuildAllAlgorithms drives all six kernels through identical
// streams on both mutation paths and demands bitwise-equal states plus
// identical logical graphs after every batch.
func TestDeltaVsRebuildAllAlgorithms(t *testing.T) {
	for _, name := range algo.Names() {
		t.Run(name, func(t *testing.T) {
			a := makeAlgByName(t, name)
			g, stream := difftestStream(t, a, 113, 8, 32)

			mk := func(opts ...Option) *System {
				// Parallelism 1: the parallel engine's accumulative kernels are
				// only tolerance-equal across runs; the mutation paths must be
				// compared on the deterministic sequential engine.
				opts = append([]Option{WithTiming(false), WithParallelism(1)}, opts...)
				sys, err := New(g, makeAlgByName(t, name), opts...)
				if err != nil {
					t.Fatal(err)
				}
				sys.RunInitial()
				return sys
			}
			delta := mk()
			rebuild := mk(WithGraphRebuild())

			for i, b := range stream {
				if _, err := delta.ApplyBatch(b); err != nil {
					t.Fatalf("delta batch %d: %v", i, err)
				}
				if _, err := rebuild.ApplyBatch(b); err != nil {
					t.Fatalf("rebuild batch %d: %v", i, err)
				}
				dg, rg := delta.Graph(), rebuild.Graph()
				if err := dg.Validate(); err != nil {
					t.Fatalf("batch %d: delta graph invalid: %v", i, err)
				}
				de, re := dg.Edges(), rg.Edges()
				if len(de) != len(re) {
					t.Fatalf("batch %d: edge counts diverge: %d vs %d", i, len(de), len(re))
				}
				for j := range de {
					if de[j] != re[j] {
						t.Fatalf("batch %d: edge %d diverges: %+v vs %+v", i, j, de[j], re[j])
					}
				}
				if d := algo.MaxAbsDiff(delta.State(), rebuild.State()); d != 0 {
					t.Fatalf("batch %d: states differ by %v (want bitwise equal)", i, d)
				}
			}
		})
	}
}

// TestDeltaVsRebuildWithDetailedTiming repeats the comparison with the
// detailed timing layer on: the delta path reports EdgeSlots (physical slots
// including slack) as its edge address space, and cycle counts must still
// match the rebuild path exactly only in the functional state — cycle
// estimates may differ since the memory layouts differ, but both must run.
func TestDeltaVsRebuildWithDetailedTiming(t *testing.T) {
	a := makeAlgByName(t, "sssp")
	g, stream := difftestStream(t, a, 211, 5, 16)

	run := func(opts ...Option) []float64 {
		opts = append([]Option{WithTiming(true), WithDetailedTiming()}, opts...)
		sys, err := New(g, makeAlgByName(t, "sssp"), opts...)
		if err != nil {
			t.Fatal(err)
		}
		sys.RunInitial()
		for i, b := range stream {
			if _, err := sys.ApplyBatch(b); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		return sys.State()
	}

	if d := algo.MaxAbsDiff(run(), run(WithGraphRebuild())); d != 0 {
		t.Fatalf("detailed-timing states differ by %v (want bitwise equal)", d)
	}
}
