package jetstream

import (
	"os"
	"path/filepath"
	"testing"
)

// TestRestoreReadsOldCheckpointVersions proves the v4 reader still accepts
// checkpoints written by the v2 and v3 formats. The golden files under
// results/ were generated before the format gained the rebuild byte (v3) and
// the WAL linkage fields (v4); restoring each must reproduce — bitwise — the
// state an uninterrupted run of the recorded configuration reaches.
func TestRestoreReadsOldCheckpointVersions(t *testing.T) {
	// Re-derive the reference the goldens were captured from.
	ref, err := New(RMAT(RMATConfig{Vertices: 64, Edges: 256, Seed: 7}), SSSP(0),
		WithTiming(false), WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	ref.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 12, InsertFrac: 0.7, Seed: 99})
	for i := 0; i < 3; i++ {
		if _, err := ref.ApplyBatch(gen.Next(ref.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	want := ref.State()

	for _, name := range []string{"checkpoint_v2.golden", "checkpoint_v3.golden"} {
		t.Run(name, func(t *testing.T) {
			f, err := os.Open(filepath.Join("results", name))
			if err != nil {
				t.Fatal(err)
			}
			sys, rerr := Restore(f)
			if cerr := f.Close(); cerr != nil {
				t.Fatal(cerr)
			}
			if rerr != nil {
				t.Fatalf("Restore: %v", rerr)
			}
			if sys.Batches() != 3 {
				t.Fatalf("Batches = %d, want 3", sys.Batches())
			}
			if !bitwiseEqual(sys.State(), want) {
				t.Fatalf("%s: restored state diverges from reference", name)
			}
		})
	}
}
