package jetstream_test

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"jetstream"
)

// TestAlgorithmSpecJSON drives the wire form of AlgorithmSpec: strict
// decoding, eager name validation with the typed error, and a lossless
// marshal/unmarshal round trip.
func TestAlgorithmSpecJSON(t *testing.T) {
	cases := []struct {
		name    string
		in      string
		want    jetstream.AlgorithmSpec
		wantErr error  // errors.Is target, nil for success
		errSub  string // substring the error must carry, "" for any
	}{
		{name: "sssp", in: `{"name":"sssp","root":3}`,
			want: jetstream.AlgorithmSpec{Name: "sssp", Root: 3}},
		{name: "sswp", in: `{"name":"sswp","root":1}`,
			want: jetstream.AlgorithmSpec{Name: "sswp", Root: 1}},
		{name: "bfs", in: `{"name":"bfs"}`,
			want: jetstream.AlgorithmSpec{Name: "bfs"}},
		{name: "cc", in: `{"name":"cc"}`,
			want: jetstream.AlgorithmSpec{Name: "cc"}},
		{name: "wcc", in: `{"name":"wcc"}`,
			want: jetstream.AlgorithmSpec{Name: "wcc"}},
		{name: "pagerank-eps", in: `{"name":"pagerank","eps":1e-9}`,
			want: jetstream.AlgorithmSpec{Name: "pagerank", Eps: 1e-9}},
		{name: "pagerank-shorthand", in: `{"name":"pr"}`,
			want: jetstream.AlgorithmSpec{Name: "pr"}},
		{name: "adsorption", in: `{"name":"adsorption","eps":0.001}`,
			want: jetstream.AlgorithmSpec{Name: "adsorption", Eps: 0.001}},
		{name: "unknown-name", in: `{"name":"dijkstra"}`,
			wantErr: jetstream.ErrUnknownAlgorithm, errSub: `"dijkstra"`},
		{name: "empty-name", in: `{"root":4}`,
			wantErr: jetstream.ErrUnknownAlgorithm},
		{name: "linsolve-not-wireable", in: `{"name":"linsolve"}`,
			wantErr: jetstream.ErrUnknownAlgorithm},
		{name: "unknown-field", in: `{"name":"sssp","source":3}`,
			errSub: "source"},
		{name: "wrong-type", in: `{"name":"sssp","root":"three"}`,
			errSub: "root"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var spec jetstream.AlgorithmSpec
			err := json.Unmarshal([]byte(tc.in), &spec)
			if tc.wantErr == nil && tc.errSub == "" {
				if err != nil {
					t.Fatalf("unmarshal %s: %v", tc.in, err)
				}
				if spec != tc.want {
					t.Fatalf("got %+v, want %+v", spec, tc.want)
				}
				// Round trip: marshal and decode again.
				blob, merr := json.Marshal(spec)
				if merr != nil {
					t.Fatal(merr)
				}
				var back jetstream.AlgorithmSpec
				if err := json.Unmarshal(blob, &back); err != nil {
					t.Fatalf("re-unmarshal %s: %v", blob, err)
				}
				if back != spec {
					t.Fatalf("round trip %s: got %+v, want %+v", blob, back, spec)
				}
				// A wire-valid spec must also resolve to a kernel.
				if _, aerr := jetstream.NewAlgorithm(spec); aerr != nil {
					t.Fatalf("NewAlgorithm(%+v): %v", spec, aerr)
				}
				return
			}
			if err == nil {
				t.Fatalf("unmarshal %s succeeded, want error", tc.in)
			}
			if tc.wantErr != nil && !errors.Is(err, tc.wantErr) {
				t.Fatalf("error %v does not wrap %v", err, tc.wantErr)
			}
			if tc.errSub != "" && !strings.Contains(err.Error(), tc.errSub) {
				t.Fatalf("error %q does not mention %q", err, tc.errSub)
			}
		})
	}
}

// TestAlgorithmNames pins the declarative name list the service advertises.
func TestAlgorithmNames(t *testing.T) {
	want := []string{"sssp", "sswp", "bfs", "cc", "wcc", "pagerank", "adsorption"}
	got := jetstream.AlgorithmNames()
	if len(got) != len(want) {
		t.Fatalf("AlgorithmNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("AlgorithmNames() = %v, want %v", got, want)
		}
	}
	for _, n := range got {
		if _, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: n}); err != nil {
			t.Fatalf("advertised name %q does not construct: %v", n, err)
		}
	}
}

// TestNewAlgorithmUnknown checks the constructor path wraps the same typed
// error as the JSON path.
func TestNewAlgorithmUnknown(t *testing.T) {
	_, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: "nope"})
	if !errors.Is(err, jetstream.ErrUnknownAlgorithm) {
		t.Fatalf("error %v does not wrap ErrUnknownAlgorithm", err)
	}
}
