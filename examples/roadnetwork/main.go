// Roadnetwork: shortest paths under road closures and reopenings.
//
// A navigation service keeps a shortest-path tree from a depot over a road
// network. Roads close (edge deletions — the hard case for monotonic
// algorithms) and reopen (insertions). The example streams closure-heavy
// batches through JetStream and compares the incremental cost against the
// cold-start recomputation a static accelerator would need, demonstrating
// the paper's deletion machinery (tagging, reset, reapproximation requests)
// on the workload where it matters most.
//
//	go run ./examples/roadnetwork
package main

import (
	"fmt"
	"log"

	"jetstream"
)

func main() {
	log.SetFlags(0)

	// A 70x70 road grid with some diagonal shortcuts; weights are travel
	// minutes. Grid edges are bidirectional.
	roads := jetstream.Grid(jetstream.GridConfig{Rows: 70, Cols: 70, Diagonal: 0.1, MaxWeight: 12, Seed: 5})
	depot := uint32(0)

	routes, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: "sssp", Root: depot})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := jetstream.New(roads, routes)
	if err != nil {
		log.Fatal(err)
	}
	init := sys.RunInitial()
	fmt.Printf("road network: %d junctions, %d road segments\n", roads.NumVertices(), roads.NumEdges())
	fmt.Printf("initial route computation: %v\n", init.Duration)

	// Rush hour: batches of mostly closures (70% deletes), mirrored so both
	// directions of a road close together.
	closures := jetstream.NewStream(jetstream.StreamConfig{
		BatchSize: 80, InsertFrac: 0.3, Symmetric: true, MaxWeight: 12, Seed: 17,
	})

	probe := uint32(roads.NumVertices() - 1) // far corner of the map
	var incTotal, coldTotal uint64
	for wave := 1; wave <= 4; wave++ {
		b := closures.Next(sys.Graph())
		res, err := sys.ApplyBatch(b)
		if err != nil {
			log.Fatal(err)
		}
		incTotal += res.Cycles

		// What a static accelerator would pay: full recomputation on the
		// mutated network.
		cold, err := jetstream.New(sys.Graph(), routes)
		if err != nil {
			log.Fatal(err)
		}
		coldRes := cold.RunInitial()
		coldTotal += coldRes.Cycles

		fmt.Printf("wave %d: %2d closures, %2d reopenings | incremental %8v vs cold start %8v | ETA to far corner: %.0f min (%d junctions rerouted)\n",
			wave, len(b.Deletes), len(b.Inserts), res.Duration, coldRes.Duration,
			sys.State()[probe], res.Stats.VerticesReset)
	}

	if d := sys.Verify(); d != 0 {
		log.Fatalf("routes diverged from reference by %g", d)
	}
	fmt.Printf("all routes verified; streaming used %.1f%% of the cold-start cycles across the waves\n",
		100*float64(incTotal)/float64(coldTotal))
}
