// Realtime: how small can batches get?
//
// Streaming systems aggregate updates into batches to amortize evaluation
// cost; the paper's Fig 13 argues JetStream's per-batch overhead is low
// enough to shrink batches toward real-time operation. This example sweeps
// the batch size from 512 updates down to 1 while keeping the total number
// of streamed updates fixed, and reports the per-update latency — the figure
// of merit for an online service deciding how long to buffer its feed.
//
//	go run ./examples/realtime
package main

import (
	"fmt"
	"log"
	"time"

	"jetstream"
)

func main() {
	log.SetFlags(0)

	const totalUpdates = 1024
	fmt.Println("streaming BFS over a social graph; fixed total of", totalUpdates, "updates")
	fmt.Printf("%-12s %-10s %-16s %-16s\n", "batch size", "batches", "time/batch", "time/update")

	bfs, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: "bfs", Root: 0})
	if err != nil {
		log.Fatal(err)
	}
	for _, batchSize := range []int{512, 128, 32, 8, 1} {
		g := jetstream.RMAT(jetstream.RMATConfig{Vertices: 6000, Edges: 50000, Seed: 9})
		sys, err := jetstream.New(g, bfs)
		if err != nil {
			log.Fatal(err)
		}
		sys.RunInitial()

		gen := jetstream.NewStream(jetstream.StreamConfig{
			BatchSize: batchSize, InsertFrac: 0.7, Seed: 13,
		})
		n := totalUpdates / batchSize
		var cycles uint64
		for i := 0; i < n; i++ {
			res, err := sys.ApplyBatch(gen.Next(sys.Graph()))
			if err != nil {
				log.Fatal(err)
			}
			cycles += res.Cycles
		}
		perBatch := time.Duration(float64(cycles) / float64(n))             // ns at 1 GHz
		perUpdate := time.Duration(float64(cycles) / float64(totalUpdates)) // ns at 1 GHz
		fmt.Printf("%-12d %-10d %-16v %-16v\n", batchSize, n, perBatch, perUpdate)
	}

	fmt.Println("\nsmaller batches cost more per update (fixed per-batch work),")
	fmt.Println("but the floor is microseconds — single-update streaming is feasible,")
	fmt.Println("which is the paper's near-real-time operation argument (Fig 13).")
}
