// Quickstart: the 60-second tour of the JetStream public API.
//
// It builds a small social-style graph, evaluates single-source shortest
// paths on the modeled accelerator, streams two update batches through the
// incremental engine, and shows that each batch costs a tiny fraction of the
// initial evaluation while the results stay exact.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"jetstream"
)

func main() {
	log.SetFlags(0)

	// A power-law graph in the style of the paper's social-network datasets.
	g := jetstream.RMAT(jetstream.RMATConfig{Vertices: 5000, Edges: 40000, Seed: 7})

	// A standing shortest-paths query rooted at vertex 0.
	algo, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: "sssp", Root: 0})
	if err != nil {
		log.Fatal(err)
	}
	sys, err := jetstream.New(g, algo)
	if err != nil {
		log.Fatal(err)
	}

	// Initial (static) evaluation — what GraphPulse would do.
	init := sys.RunInitial()
	fmt.Printf("initial evaluation: %v over %d events\n", init.Duration, init.Stats.EventsProcessed)

	// Stream updates: 70% edge insertions, 30% deletions per batch.
	updates := jetstream.NewStream(jetstream.StreamConfig{BatchSize: 100, InsertFrac: 0.7, Seed: 11})
	for i := 1; i <= 2; i++ {
		batch := updates.Next(sys.Graph())
		res, err := sys.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("batch %d (%d ins / %d del): %v — %.1f%% of the cold-start cost\n",
			i, len(batch.Inserts), len(batch.Deletes), res.Duration,
			100*float64(res.Cycles)/float64(init.Cycles))
	}

	// The streaming results are exact: compare against Dijkstra from scratch.
	if d := sys.Verify(); d != 0 {
		log.Fatalf("diverged from reference by %g", d)
	}
	fmt.Println("verified: streaming state matches a from-scratch Dijkstra run")

	// Read a result.
	fmt.Printf("distance to vertex 42: %g\n", sys.State()[42])
}
