// Socialstream: incremental PageRank and community tracking over a social
// feed.
//
// A social network keeps changing: follows appear, unfollows remove edges.
// This example runs two standing queries over the same evolving graph —
// incremental PageRank (accumulative) and Connected Components (monotonic) —
// and after each batch reports the biggest rank movers and any component
// merges/splits, the workload class the paper's introduction motivates.
//
//	go run ./examples/socialstream
package main

import (
	"fmt"
	"log"
	"sort"

	"jetstream"
)

func main() {
	log.SetFlags(0)

	base := jetstream.RMAT(jetstream.RMATConfig{Vertices: 4000, Edges: 30000, Seed: 3})

	// PageRank runs on the directed follower graph.
	pr, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: "pagerank", Eps: 1e-7})
	if err != nil {
		log.Fatal(err)
	}
	ranks, err := jetstream.New(base, pr)
	if err != nil {
		log.Fatal(err)
	}
	ranks.RunInitial()

	// Communities run on the symmetrized friendship view; its updates must
	// stay symmetric, so it gets its own mirrored stream.
	friends := jetstream.Symmetrize(base)
	cc, err := jetstream.NewAlgorithm(jetstream.AlgorithmSpec{Name: "cc"})
	if err != nil {
		log.Fatal(err)
	}
	comms, err := jetstream.New(friends, cc)
	if err != nil {
		log.Fatal(err)
	}
	comms.RunInitial()

	prev := snapshot(ranks.State())
	prevComponents := countComponents(comms.State())
	fmt.Printf("initial: %d communities; top user %d (rank %.3f)\n",
		prevComponents, top(prev), prev[top(prev)])

	rankFeed := jetstream.NewStream(jetstream.StreamConfig{BatchSize: 150, InsertFrac: 0.7, Seed: 21})
	friendFeed := jetstream.NewStream(jetstream.StreamConfig{BatchSize: 150, InsertFrac: 0.6, Symmetric: true, Seed: 22})

	for day := 1; day <= 3; day++ {
		rb := rankFeed.Next(ranks.Graph())
		rres, err := ranks.ApplyBatch(rb)
		if err != nil {
			log.Fatal(err)
		}
		fb := friendFeed.Next(comms.Graph())
		cres, err := comms.ApplyBatch(fb)
		if err != nil {
			log.Fatal(err)
		}

		cur := snapshot(ranks.State())
		mover, delta := biggestMover(prev, cur)
		components := countComponents(comms.State())
		fmt.Printf("day %d: pagerank %v, cc %v | biggest mover: user %d (%+.4f) | communities: %d (%+d)\n",
			day, rres.Duration, cres.Duration, mover, delta, components, components-prevComponents)
		prev = cur
		prevComponents = components
	}
}

func snapshot(s []float64) []float64 { return append([]float64(nil), s...) }

func top(ranks []float64) int {
	best := 0
	for i, r := range ranks {
		if r > ranks[best] {
			best = i
		}
	}
	return best
}

func biggestMover(prev, cur []float64) (user int, delta float64) {
	for i := range cur {
		if d := cur[i] - prev[i]; abs(d) > abs(delta) {
			user, delta = i, d
		}
	}
	return user, delta
}

func countComponents(labels []float64) int {
	set := map[float64]bool{}
	for _, l := range labels {
		set[l] = true
	}
	// Sorted size keeps output deterministic across map iteration orders.
	out := make([]float64, 0, len(set))
	for l := range set {
		out = append(out, l)
	}
	sort.Float64s(out)
	return len(out)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
