// Linsolver: a streaming linear-equation system on the accelerator.
//
// §3.1 of the paper lists "many Linear Equation Solvers" among the workloads
// the event-driven model supports. This example solves x = b + Wx — think of
// a resistive circuit or a heat-diffusion grid whose coupling coefficients
// keep changing — and streams coefficient updates through JetStream's
// accumulative machinery. Because the kernel's propagation is
// degree-independent, the deletion recovery nets out every unchanged
// coefficient exactly, making updates extremely cheap.
//
//	go run ./examples/linsolver
package main

import (
	"fmt"
	"log"
	"math/rand"

	"jetstream"
	"jetstream/internal/algo"
	"jetstream/internal/graph"
)

func main() {
	log.SetFlags(0)

	// The coupling matrix: a random sparse graph rescaled into a contraction
	// (absolute in-weights per vertex sum to 0.7).
	w := algo.RowNormalize(jetstream.RMAT(jetstream.RMATConfig{Vertices: 3000, Edges: 24000, Seed: 19}), 0.7)

	// Constant terms: every node carries unit forcing (heat injection).
	kernel := algo.NewLinSolve(nil, 1e-7)

	sys, err := jetstream.New(w, kernel)
	if err != nil {
		log.Fatal(err)
	}
	init := sys.RunInitial()
	fmt.Printf("system: %d unknowns, %d coefficients; initial solve: %v\n",
		w.NumVertices(), w.NumEdges(), init.Duration)

	// Stream coefficient drift: existing couplings change value by a couple
	// of percent. A weight modification is modeled as a deletion followed by
	// an insertion of the same pair (paper §2.1); the accumulative recovery
	// nets the two into one tiny delta per drifted coefficient, so the
	// re-solve touches only the perturbation's neighborhood.
	rng := rand.New(rand.NewSource(23))
	for step := 1; step <= 4; step++ {
		cur := sys.Graph()
		var batch jetstream.Batch
		seen := map[[2]uint32]bool{}
		for len(batch.Deletes) < 50 {
			e := cur.EdgeAt(rng.Intn(cur.NumEdges()))
			k := [2]uint32{e.Src, e.Dst}
			if seen[k] {
				continue
			}
			seen[k] = true
			drifted := e
			drifted.Weight *= 1 + (rng.Float64()-0.5)*0.01
			batch.Deletes = append(batch.Deletes, e)
			batch.Inserts = append(batch.Inserts, drifted)
		}
		res, err := sys.ApplyBatch(batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("step %d: %d coefficients drifted, re-solved in %v (%.2f%% of initial solve)\n",
			step, len(batch.Deletes), res.Duration, 100*float64(res.Cycles)/float64(init.Cycles))
	}

	// Cross-check against a from-scratch Jacobi iteration.
	ref := algo.LinSolveRef(sys.Graph(), func(graph.VertexID) float64 { return 1 }, 1e-12)
	worst := 0.0
	for i := range ref {
		if d := abs(sys.State()[i] - ref[i]); d > worst {
			worst = d
		}
	}
	fmt.Printf("verified: max deviation from a from-scratch Jacobi solve = %.2g\n", worst)
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
