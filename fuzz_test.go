package jetstream

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc64"
	"math"
	"os"
	"path/filepath"
	"testing"

	"jetstream/internal/wal"
)

// fuzzBatch decodes an arbitrary byte string into a Batch. Nothing is
// validated here on purpose: endpoints may be far out of range, weights may be
// NaN, negative or infinite, pairs may repeat — the decoder's job is to reach
// the ugly corners of the input space, ApplyBatch's job is to survive them.
func fuzzBatch(data []byte) Batch {
	var b Batch
	for len(data) >= 5 {
		op := data[0]
		src := uint32(data[1])<<1 | uint32(data[2])>>7 // occasionally out of range
		dst := uint32(data[3])
		var w float64
		switch {
		case len(data) >= 13:
			w = math.Float64frombits(binary.LittleEndian.Uint64(data[5:13]))
			data = data[13:]
		default:
			w = float64(int8(data[4]))
			data = data[5:]
		}
		e := Edge{Src: src, Dst: dst, Weight: w}
		if op%2 == 0 {
			b.Inserts = append(b.Inserts, e)
		} else {
			b.Deletes = append(b.Deletes, e)
		}
	}
	return b
}

// FuzzApplyBatch hardens the public streaming boundary: batches decoded from
// arbitrary bytes must never panic the system. Under Repair every batch is
// accepted (invalid updates dropped and counted) and the surviving state must
// still verify exactly against a from-scratch solve; under Strict a dirty
// batch is rejected with a *BatchError and the state stays untouched.
func FuzzApplyBatch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 5})
	f.Add([]byte{1, 0, 0, 1, 0})                                            // delete of an edge
	f.Add([]byte{0, 255, 255, 255, 128})                                    // out of range, negative weight
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 240, 127})                // +Inf weight
	f.Add([]byte{0, 0, 0, 9, 0, 1, 0, 0, 0, 0, 0, 248, 127, 1, 0, 0, 9, 0}) // NaN weight then delete
	f.Fuzz(func(t *testing.T, data []byte) {
		b := fuzzBatch(data)

		g := RMAT(RMATConfig{Vertices: 64, Edges: 256, Seed: 11})
		repair, err := New(g, SSSP(0), WithTiming(false), WithIngest(Repair))
		if err != nil {
			t.Fatal(err)
		}
		repair.RunInitial()
		if _, err := repair.ApplyBatch(b); err != nil {
			t.Fatalf("Repair rejected a batch: %v\nbatch: %+v", err, b)
		}
		if d := repair.Verify(); d != 0 {
			t.Fatalf("Repair state diverged by %v\nbatch: %+v", d, b)
		}

		strict, err := New(g, SSSP(0), WithTiming(false))
		if err != nil {
			t.Fatal(err)
		}
		strict.RunInitial()
		before := strict.State()
		if _, err := strict.ApplyBatch(b); err != nil {
			var be *BatchError
			if !errors.As(err, &be) || len(be.Issues) == 0 {
				t.Fatalf("Strict rejection is not a populated *BatchError: %v", err)
			}
			after := strict.State()
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("Strict rejection mutated state at vertex %d", i)
				}
			}
		}
		if d := strict.Verify(); d != 0 {
			t.Fatalf("Strict state diverged by %v\nbatch: %+v", d, b)
		}
	})
}

// FuzzApplyBatchParallel is the differential fuzz target for the parallel
// engine: the same fuzzed batch stream is applied at parallelism 1 and 4 and
// the SSSP states must match bit for bit — selective kernels converge to the
// unique fixpoint regardless of event interleaving, so any divergence is a
// races-or-routing bug in the sharded path, not numerical noise.
func FuzzApplyBatchParallel(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 0, 2, 5})
	f.Add([]byte{1, 0, 0, 1, 0})
	f.Add([]byte{0, 255, 255, 255, 128})
	f.Add([]byte{0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 240, 127})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := fuzzBatch(data)
		g := RMAT(RMATConfig{Vertices: 64, Edges: 256, Seed: 11})

		run := func(p int) []float64 {
			sys, err := New(g, SSSP(0), WithTiming(false), WithParallelism(p), WithIngest(Repair))
			if err != nil {
				t.Fatal(err)
			}
			sys.RunInitial()
			if _, err := sys.ApplyBatch(b); err != nil {
				t.Fatalf("p=%d rejected a repaired batch: %v", p, err)
			}
			if d := sys.Verify(); d != 0 {
				t.Fatalf("p=%d state diverged from reference by %v\nbatch: %+v", p, d, b)
			}
			return sys.State()
		}

		seq, par := run(1), run(4)
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("vertex %d: parallel state %v != sequential %v\nbatch: %+v", i, par[i], seq[i], b)
			}
		}
	})
}

// FuzzRestore hardens the checkpoint reader against arbitrary bytes. Each
// input is fed to Restore twice: raw, which exercises the frame checks
// (magic, version, length, checksum), and wrapped in a valid frame — correct
// magic, current version, matching length and CRC64 — which carries the
// fuzzer's payload past the envelope into the deep field decoder. Restore
// must never panic and every rejection must wrap ErrCorruptCheckpoint (with
// ErrTruncated additionally marking short input).
func FuzzRestore(f *testing.F) {
	// Seed with a real checkpoint so mutations explore the valid format's
	// neighborhood, plus its truncations and an empty input.
	sys, err := New(RMAT(RMATConfig{Vertices: 32, Edges: 128, Seed: 3}), SSSP(0), WithTiming(false))
	if err != nil {
		f.Fatal(err)
	}
	sys.RunInitial()
	var buf bytes.Buffer
	if err := sys.Checkpoint(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-3])
	f.Add(valid[len(ckptMagic)+12:]) // payload without frame

	f.Fuzz(func(t *testing.T, data []byte) {
		check := func(form string, r *bytes.Reader) {
			sys, err := Restore(r)
			if err == nil {
				if sys == nil {
					t.Fatalf("%s: nil system with nil error", form)
				}
				return
			}
			if !errors.Is(err, ErrCorruptCheckpoint) {
				t.Fatalf("%s: rejection does not wrap ErrCorruptCheckpoint: %v", form, err)
			}
		}
		check("raw", bytes.NewReader(data))

		framed := make([]byte, 0, len(ckptMagic)+12+len(data)+8)
		framed = append(framed, ckptMagic[:]...)
		framed = binary.LittleEndian.AppendUint32(framed, ckptVersion)
		framed = binary.LittleEndian.AppendUint64(framed, uint64(len(data)))
		framed = append(framed, data...)
		framed = binary.LittleEndian.AppendUint64(framed, crc64.Checksum(data, ckptCRC))
		check("framed", bytes.NewReader(framed))
	})
}

// FuzzWindowExpiry drives a windowed system through fuzzed insert/delete
// interleavings (TTL derived from the input too) and holds it to the rebuild
// oracle: after every batch the graph must hold exactly the in-window edges an
// independent per-edge age map predicts, the functional state must verify
// exactly against a from-scratch solve on that graph, and the system must
// never panic — under Repair every batch lands, under Strict a dirty batch is
// rejected with a populated *BatchError and the window untouched.
func FuzzWindowExpiry(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{2, 0, 1, 0, 2, 5})
	f.Add([]byte{1, 1, 0, 0, 1, 0})
	f.Add([]byte{3, 0, 255, 255, 255, 128})
	f.Add([]byte{2, 0, 0, 0, 9, 0, 0, 0, 0, 0, 0, 0, 240, 127, 1, 0, 0, 9, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		ttl := 1
		if len(data) > 0 {
			ttl = 1 + int(data[0]%4)
			data = data[1:]
		}
		// Slice the remaining bytes into up to 6 batches so expiry actually
		// interleaves with the fuzzed updates over several epochs.
		var batches []Batch
		for len(data) > 0 && len(batches) < 6 {
			n := len(data)
			if n > 16 {
				n = 16
			}
			batches = append(batches, fuzzBatch(data[:n]))
			data = data[n:]
		}
		for len(batches) < ttl+2 {
			batches = append(batches, Batch{}) // quiet epochs force expiry past the TTL
		}

		g := RMAT(RMATConfig{Vertices: 64, Edges: 256, Seed: 11})
		sys, err := New(g, SSSP(0), WithTiming(false), WithIngest(Repair), WithWindow(ttl))
		if err != nil {
			t.Fatal(err)
		}
		sys.RunInitial()
		// Independent oracle: edge → insertion epoch.
		age := make(map[[2]uint32]uint64, g.NumEdges())
		for _, e := range g.Edges() {
			age[[2]uint32{e.Src, e.Dst}] = 0
		}
		for i, b := range batches {
			k := uint64(i + 1)
			// Mirror the system's sanitize on the pre-batch graph (pure) so
			// the oracle applies exactly the surviving updates.
			clean, _ := sys.Graph().SanitizeBatch(b)
			if _, err := sys.ApplyBatch(b); err != nil {
				t.Fatalf("Repair rejected batch %d: %v\nbatch: %+v", k, err, b)
			}
			for _, e := range clean.Deletes {
				delete(age, [2]uint32{e.Src, e.Dst})
			}
			for key, epoch := range age {
				if epoch+uint64(ttl) <= k {
					delete(age, key)
				}
			}
			for _, e := range clean.Inserts {
				age[[2]uint32{e.Src, e.Dst}] = k
			}
			cur := sys.Graph()
			if cur.NumEdges() != len(age) {
				t.Fatalf("batch %d: graph holds %d edges, oracle %d\nbatch: %+v", k, cur.NumEdges(), len(age), b)
			}
			for key := range age {
				if _, ok := cur.HasEdge(key[0], key[1]); !ok {
					t.Fatalf("batch %d: in-window edge (%d,%d) missing\nbatch: %+v", k, key[0], key[1], b)
				}
			}
			if d := sys.Verify(); d != 0 {
				t.Fatalf("batch %d: state diverged by %v\nbatch: %+v", k, d, b)
			}
		}

		// Strict variant: one fuzzed batch against a fresh windowed system —
		// a rejection must be a populated *BatchError with state and window
		// both untouched (the next empty batch expires exactly the full
		// initial graph at the TTL boundary).
		if len(batches) == 0 {
			return
		}
		strict, err := New(g, SSSP(0), WithTiming(false), WithWindow(ttl))
		if err != nil {
			t.Fatal(err)
		}
		strict.RunInitial()
		before := strict.State()
		if _, err := strict.ApplyBatch(batches[0]); err != nil {
			var be *BatchError
			if !errors.As(err, &be) || len(be.Issues) == 0 {
				t.Fatalf("Strict rejection is not a populated *BatchError: %v", err)
			}
			after := strict.State()
			for i := range before {
				if before[i] != after[i] {
					t.Fatalf("Strict rejection mutated state at vertex %d", i)
				}
			}
			expired := uint64(0)
			for k := 1; k <= ttl; k++ {
				res, err := strict.ApplyBatch(Batch{})
				if err != nil {
					t.Fatalf("post-rejection empty batch %d: %v", k, err)
				}
				expired += res.Expired
			}
			if expired != uint64(g.NumEdges()) {
				t.Fatalf("rejection disturbed the window: %d edges expired by the TTL boundary, want %d", expired, g.NumEdges())
			}
		}
	})
}

// FuzzWALReplay hardens the log reader: arbitrary bytes fed to both Replay
// (strict: contiguous sequence from the snapshot position) and Scan (any
// start) must never panic; rejections must wrap wal.ErrCorrupt and a clean
// torn tail must be reported through ReplayStats, not an error.
func FuzzWALReplay(f *testing.F) {
	// Seed with a real two-record log and its torn/rotted variants.
	dir := f.TempDir()
	l, err := wal.Open(dir, wal.Options{Sync: wal.SyncNone})
	if err != nil {
		f.Fatal(err)
	}
	for i := 1; i <= 2; i++ {
		b := Batch{Inserts: []Edge{{Src: uint32(i), Dst: uint32(i + 1), Weight: 1}}}
		if err := l.Append(uint64(i), b); err != nil {
			f.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(filepath.Join(dir, wal.LogName))
	if err != nil {
		f.Fatal(err)
	}
	f.Add([]byte{})
	f.Add(valid)
	f.Add(valid[:len(valid)-5])
	rotted := append([]byte(nil), valid...)
	rotted[9] ^= 0x40
	f.Add(rotted)

	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := wal.Replay(data, 0, func(wal.Record) error { return nil })
		if err != nil && !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("Replay rejection does not wrap ErrCorrupt: %v", err)
		}
		if err == nil && st.Truncated && st.ValidSize >= int64(len(data)) {
			t.Fatalf("truncated stats without dropped bytes: %+v over %d bytes", st, len(data))
		}
		if _, err := wal.Scan(data); err != nil && !errors.Is(err, wal.ErrCorrupt) {
			t.Fatalf("Scan rejection does not wrap ErrCorrupt: %v", err)
		}
	})
}
