package jetstream

// Property-based quiescence tests: adversarial batch schedules must always
// drive the parallel engine to termination, with event accounting that obeys
// the queue's conservation law and stays within the coalescing-allowed
// envelope of the sequential run. The schedules target the failure modes of
// a distributed termination protocol — hot-vertex skew (every worker funnels
// events at one owner, maximal cross-partition traffic), delete-heavy streams
// (recovery phases dominate), and empty batches (quiescence from quiescence).

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

const quiescenceTimeout = 2 * time.Minute

// runWithDeadline fails the test if fn does not return in time — the
// quiescence property is precisely "this call returns".
func runWithDeadline(t *testing.T, what string, fn func()) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		fn()
	}()
	select {
	case <-done:
	case <-time.After(quiescenceTimeout):
		t.Fatalf("%s: engine failed to reach quiescence within %v", what, quiescenceTimeout)
	}
}

// adversarialSchedule draws batches from a deliberately hostile distribution.
// Updates are raw (possibly invalid — duplicate pairs, absent deletes); the
// Repair ingest policy drops the invalid remainder, which is itself part of
// the property being tested.
func adversarialSchedule(kind string, rng *rand.Rand, n int, batches, batchSize int) []Batch {
	out := make([]Batch, batches)
	for i := range out {
		var b Batch
		switch kind {
		case "hot-vertex":
			// All traffic converges on a handful of vertices: every worker
			// keeps forwarding events to the same few owners.
			hot := func() uint32 { return uint32(rng.Intn(4)) }
			any := func() uint32 { return uint32(rng.Intn(n)) }
			for j := 0; j < batchSize; j++ {
				e := Edge{Src: any(), Dst: hot(), Weight: 1 + float64(rng.Intn(5))}
				if rng.Intn(4) == 0 {
					e.Src, e.Dst = e.Dst, e.Src
				}
				if rng.Intn(3) == 0 {
					b.Deletes = append(b.Deletes, e)
				} else {
					b.Inserts = append(b.Inserts, e)
				}
			}
		case "delete-heavy":
			for j := 0; j < batchSize; j++ {
				e := Edge{Src: uint32(rng.Intn(n)), Dst: uint32(rng.Intn(n)), Weight: 1 + float64(rng.Intn(5))}
				if rng.Intn(10) < 8 {
					b.Deletes = append(b.Deletes, e)
				} else {
					b.Inserts = append(b.Inserts, e)
				}
			}
		case "empty":
			// Alternate empty and tiny batches: phases must terminate with
			// nothing (or almost nothing) to do.
			if i%2 == 0 {
				out[i] = Batch{}
				continue
			}
			b.Inserts = append(b.Inserts, Edge{Src: uint32(rng.Intn(n)), Dst: uint32(rng.Intn(n)), Weight: 1})
		}
		out[i] = b
	}
	return out
}

func TestQuiescenceUnderAdversarialSchedules(t *testing.T) {
	kinds := []string{"hot-vertex", "delete-heavy", "empty"}
	algs := []struct {
		name string
		mk   func() Algorithm
	}{
		{"sssp", func() Algorithm { return SSSP(0) }},
		{"pagerank", func() Algorithm { return PageRank(0) }},
	}
	const nv = 200
	for _, kind := range kinds {
		for _, al := range algs {
			t.Run(kind+"/"+al.name, func(t *testing.T) {
				g := RMAT(RMATConfig{Vertices: nv, Edges: 1600, Seed: 9})
				schedule := adversarialSchedule(kind, rand.New(rand.NewSource(17)), nv, 12, 30)

				run := func(p int) Counters {
					sys, err := New(g, al.mk(), WithTiming(false), WithParallelism(p), WithIngest(Repair))
					if err != nil {
						t.Fatal(err)
					}
					runWithDeadline(t, fmt.Sprintf("p=%d initial", p), func() { sys.RunInitial() })
					for i, b := range schedule {
						runWithDeadline(t, fmt.Sprintf("p=%d batch %d", p, i), func() {
							res, err := sys.ApplyBatch(b)
							if err != nil {
								t.Errorf("batch %d: %v", i, err)
								return
							}
							// The Repair fix: the per-batch report must be
							// deterministic and self-consistent.
							if res.Repaired != uint64(len(res.Issues)) {
								t.Errorf("batch %d: Repaired=%d but %d issues reported", i, res.Repaired, len(res.Issues))
							}
							if res.Stats.UpdatesDropped != res.Repaired {
								t.Errorf("batch %d: per-batch Stats.UpdatesDropped=%d, want %d", i, res.Stats.UpdatesDropped, res.Repaired)
							}
						})
					}
					st := sys.TotalStats()
					// Conservation law of the coalescing queue: at quiescence
					// every generated event was either processed or coalesced
					// into one that was. Holds exactly, at any parallelism.
					if r := st.EventsUnaccounted(); r != 0 {
						t.Errorf("p=%d: conservation violated: %d events unaccounted (generated %d, processed %d, coalesced %d)",
							p, r, st.EventsGenerated, st.EventsProcessed, st.EventsCoalesced)
					}
					return st
				}

				seq := run(1)
				for _, p := range []int{2, 8} {
					par := run(p)
					// The coalescing-allowed envelope: parallel sharding can
					// only split coalescing opportunities, never create work
					// out of thin air — arrivals (processed + coalesced) stay
					// within a loose constant of the sequential schedule, and
					// useful work cannot collapse below it either.
					seqArrivals := seq.EventsProcessed + seq.EventsCoalesced
					parArrivals := par.EventsProcessed + par.EventsCoalesced
					if parArrivals > 16*seqArrivals {
						t.Errorf("p=%d: %d event arrivals vs sequential %d — outside the coalescing bound", p, parArrivals, seqArrivals)
					}
					if par.EventsProcessed < seq.EventsProcessed/16 {
						t.Errorf("p=%d: only %d events processed vs sequential %d", p, par.EventsProcessed, seq.EventsProcessed)
					}
				}
			})
		}
	}
}
