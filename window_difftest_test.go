package jetstream

// Oracle-backed differential harness for the infinite-window layer: every
// kernel (the six evaluated ones plus the windowed connected-components
// kernel) is driven through every adversarial stream shape at window TTLs 2
// and 4 and parallelism 1, 2, 8, while a naive oracle replays the identical
// stream — the oracle's graph is rebuilt from scratch as exactly the in-window
// edges, and its state recomputed cold with the conventional reference solver.
// After every batch the windowed system's graph must equal the oracle's graph
// bitwise (same (src,dst) pairs, same weight bits), its Expired count must
// match the oracle's expiry bookkeeping, and its state must match the cold
// recompute: bitwise for the selective kernels, within the epsilon-truncation
// bound for the accumulative ones.

import (
	"fmt"
	"sort"
	"testing"

	"jetstream/internal/algo"
	"jetstream/internal/core"
	"jetstream/internal/stream"
)

// windowOracle is the from-scratch rebuild oracle: a map from edge to its
// insertion epoch and weight, advanced batch by batch with the plain window
// semantics (user deletes win, then everything at or below k-ttl falls out,
// then the batch's inserts arrive at epoch k).
type windowOracle struct {
	ttl  int
	age  map[[2]uint32]uint64
	wt   map[[2]uint32]float64
	n    int
	sym  bool
	last uint64 // expired-edge count of the most recent step
}

func newWindowOracle(g *Graph, ttl int) *windowOracle {
	o := &windowOracle{
		ttl: ttl,
		age: make(map[[2]uint32]uint64),
		wt:  make(map[[2]uint32]float64),
		n:   g.NumVertices(),
		sym: g.Symmetric(),
	}
	for _, e := range g.Edges() {
		k := [2]uint32{e.Src, e.Dst}
		o.age[k] = 0
		o.wt[k] = e.Weight
	}
	return o
}

// step advances the oracle through batch number k (1-based).
func (o *windowOracle) step(k uint64, b Batch) {
	for _, e := range b.Deletes {
		key := [2]uint32{e.Src, e.Dst}
		delete(o.age, key)
		delete(o.wt, key)
	}
	var expired uint64
	for key, epoch := range o.age {
		if epoch+uint64(o.ttl) <= k {
			delete(o.age, key)
			delete(o.wt, key)
			expired++
		}
	}
	o.last = expired
	for _, e := range b.Inserts {
		key := [2]uint32{e.Src, e.Dst}
		o.age[key] = k
		o.wt[key] = e.Weight
	}
}

// graph materializes the oracle's edge set as a cold-built CSR.
func (o *windowOracle) graph(t *testing.T) *Graph {
	t.Helper()
	edges := make([]Edge, 0, len(o.age))
	for key := range o.age {
		edges = append(edges, Edge{Src: key[0], Dst: key[1], Weight: o.wt[key]})
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].Src != edges[j].Src {
			return edges[i].Src < edges[j].Src
		}
		return edges[i].Dst < edges[j].Dst
	})
	g, err := BuildGraph(o.n, edges)
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	return g
}

// sameEdges compares two graphs' edge sets bitwise.
func sameEdges(a, b *Graph) string {
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		return fmt.Sprintf("edge count %d vs oracle %d", len(ae), len(be))
	}
	key := func(e Edge) [2]uint32 { return [2]uint32{e.Src, e.Dst} }
	sort.Slice(ae, func(i, j int) bool { ki, kj := key(ae[i]), key(ae[j]); return ki[0] < kj[0] || (ki[0] == kj[0] && ki[1] < kj[1]) })
	sort.Slice(be, func(i, j int) bool { ki, kj := key(be[i]), key(be[j]); return ki[0] < kj[0] || (ki[0] == kj[0] && ki[1] < kj[1]) })
	for i := range ae {
		if ae[i] != be[i] {
			return fmt.Sprintf("edge %d: (%d,%d,%v) vs oracle (%d,%d,%v)",
				i, ae[i].Src, ae[i].Dst, ae[i].Weight, be[i].Src, be[i].Dst, be[i].Weight)
		}
	}
	return ""
}

// windowedKernels is every kernel under the window harness: the six evaluated
// ones plus the windowed connected-components kernel.
func windowedKernels() []string { return append(algo.Names(), "wcc") }

// recordWindowedStream draws an adversarial stream against a throwaway
// windowed system so every batch is valid for the (expiry-including) graph
// version it will meet during replay.
func recordWindowedStream(t *testing.T, name string, kind stream.ShapeKind, ttl int, batches, batchSize int, seed int64) (*Graph, []Batch) {
	t.Helper()
	a := makeAlgByName(t, name)
	sym := algo.NeedsSymmetric(a)
	g := RMAT(RMATConfig{Vertices: 220, Edges: 1600, Seed: seed})
	if sym {
		g = Symmetrize(g)
	}
	gen := stream.NewShape(stream.ShapeConfig{
		Kind: kind, BatchSize: batchSize, MaxWeight: 8, Symmetric: sym, Period: ttl, Seed: seed + 1,
	})
	sys, err := New(g, a, WithTiming(false), WithParallelism(1), WithWindow(ttl))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	out := make([]Batch, batches)
	for i := range out {
		b := gen.Next(sys.Graph())
		if _, err := sys.ApplyBatch(b); err != nil {
			t.Fatalf("stream recording batch %d: %v", i, err)
		}
		out[i] = b
	}
	return g, out
}

// TestWindowedDifferential is the headline suite. Subtest names follow
// kernel/shape/ttl/parallelism so CI can shard by kernel and shape.
func TestWindowedDifferential(t *testing.T) {
	for _, name := range windowedKernels() {
		t.Run(name, func(t *testing.T) {
			for _, kind := range stream.Shapes() {
				t.Run(kind.String(), func(t *testing.T) {
					for _, ttl := range []int{2, 4} {
						t.Run(fmt.Sprintf("ttl%d", ttl), func(t *testing.T) {
							base, batches := recordWindowedStream(t, name, kind, ttl, 7, 24, int64(101+ttl))
							for _, p := range difftestParallelisms {
								t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
									runWindowedDifferential(t, name, base, batches, ttl, p)
								})
							}
						})
					}
				})
			}
		})
	}
}

func runWindowedDifferential(t *testing.T, name string, base *Graph, batches []Batch, ttl, p int) {
	a := makeAlgByName(t, name)
	sys, err := New(base, a, WithTiming(false), WithParallelism(p), WithWindow(ttl))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	oracle := newWindowOracle(base, ttl)
	exact := a.Class() == algo.Selective
	// For the accumulative bound, the epsilon-truncation error scales with the
	// updates that ever propagated, not the current (window-shrunken) edge
	// count — an avalanche can expire most of the graph after the error has
	// already accumulated on the full one.
	touched := base.NumEdges()
	for i, b := range batches {
		res, err := sys.ApplyBatch(b)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		oracle.step(uint64(i+1), b)
		if res.Expired != oracle.last {
			t.Fatalf("batch %d: system expired %d edges, oracle %d", i, res.Expired, oracle.last)
		}
		og := oracle.graph(t)
		if diff := sameEdges(sys.Graph(), og); diff != "" {
			t.Fatalf("batch %d: graph diverged from in-window oracle: %s", i, diff)
		}
		// State: recompute cold on the oracle graph.
		ref := algo.Reference(a, og)
		d := algo.MaxAbsDiff(sys.StateRef(), ref)
		if exact {
			if d != 0 {
				t.Fatalf("batch %d: selective state deviates from rebuild oracle by %v (want bitwise equal)", i, d)
			}
			continue
		}
		touched += b.Size() + int(res.Expired)
		tol := core.Tolerance(sys.alg, touched, i+2)
		if d > tol {
			t.Fatalf("batch %d: accumulative state deviates by %v > tolerance %v", i, d, tol)
		}
	}
}

// TestWindowExpiresInitialGraph pins the epoch-0 rule: with TTL t and no
// user deletes, the entire initial graph ages out exactly at batch t.
func TestWindowExpiresInitialGraph(t *testing.T) {
	g := MustSymmetricTestGraph(t)
	sys, err := New(g, SSSP(0), WithTiming(false), WithWindow(3))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	initial := uint64(g.NumEdges())
	for k := 1; k <= 3; k++ {
		res, err := sys.ApplyBatch(Batch{})
		if err != nil {
			t.Fatalf("batch %d: %v", k, err)
		}
		if k < 3 && res.Expired != 0 {
			t.Fatalf("batch %d: %d edges expired before the window boundary", k, res.Expired)
		}
		if k == 3 && res.Expired != initial {
			t.Fatalf("batch 3: expired %d, want the whole initial graph (%d)", res.Expired, initial)
		}
	}
	if got := sys.Graph().NumEdges(); got != 0 {
		t.Fatalf("%d edges survive past their TTL", got)
	}
}

// MustSymmetricTestGraph builds a small symmetric graph for window unit tests.
func MustSymmetricTestGraph(t *testing.T) *Graph {
	t.Helper()
	return Symmetrize(RMAT(RMATConfig{Vertices: 60, Edges: 240, Seed: 5}))
}

// TestWindowWeightRefreshKeepsEdgeAlive pins the weight-change idiom: a
// same-batch delete+insert of one pair restamps its age, so it outlives the
// cohort it originally arrived with.
func TestWindowWeightRefreshKeepsEdgeAlive(t *testing.T) {
	g, err := BuildGraph(4, []Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}})
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(g, SSSP(0), WithTiming(false), WithWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	// Batch 1 refreshes (0,1) via delete+insert; (1,2) keeps its epoch 0.
	if _, err := sys.ApplyBatch(Batch{
		Deletes: []Edge{{Src: 0, Dst: 1, Weight: 1}},
		Inserts: []Edge{{Src: 0, Dst: 1, Weight: 5}},
	}); err != nil {
		t.Fatal(err)
	}
	// Batch 2: epoch 0 ages out — only (1,2) expires.
	res, err := sys.ApplyBatch(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 1 {
		t.Fatalf("batch 2 expired %d edges, want 1 (only the unrefreshed pair)", res.Expired)
	}
	if _, ok := sys.Graph().HasEdge(0, 1); !ok {
		t.Fatal("refreshed edge (0,1) expired with its original cohort")
	}
	// Batch 3: the refreshed pair's new epoch (1) ages out.
	res, err = sys.ApplyBatch(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 1 {
		t.Fatalf("batch 3 expired %d edges, want 1", res.Expired)
	}
	if sys.Graph().NumEdges() != 0 {
		t.Fatalf("%d edges remain", sys.Graph().NumEdges())
	}
}

// TestWindowRejectsBadTTL: WithWindow(0)/negative is a config error.
func TestWindowRejectsBadTTL(t *testing.T) {
	g := MustSymmetricTestGraph(t)
	for _, ttl := range []int{-1, -7} {
		if _, err := New(g, SSSP(0), WithWindow(ttl)); err == nil {
			t.Fatalf("WithWindow(%d) accepted", ttl)
		}
	}
}

// TestWCCSplitsOnExpiry is the kernel-level story: a bridge edge ages out and
// the component falls apart — the behavior an incremental min-label CC cannot
// express without the deletion-recovery machinery.
func TestWCCSplitsOnExpiry(t *testing.T) {
	// Two triangles joined by a bridge (2-3); symmetric.
	edges := []Edge{
		{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 0, Dst: 2, Weight: 1},
		{Src: 3, Dst: 4, Weight: 1}, {Src: 4, Dst: 5, Weight: 1}, {Src: 3, Dst: 5, Weight: 1},
		{Src: 2, Dst: 3, Weight: 1},
	}
	var sym []Edge
	for _, e := range edges {
		sym = append(sym, e, Edge{Src: e.Dst, Dst: e.Src, Weight: e.Weight})
	}
	g, err := BuildGraph(6, sym)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := New(g, WCC(), WithTiming(false), WithWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	for _, v := range []int{3, 4, 5} {
		if sys.StateRef()[v] != 0 {
			t.Fatalf("vertex %d labeled %v before expiry, want 0 (one component)", v, sys.StateRef()[v])
		}
	}
	// Batch 1: refresh every edge except the bridge, so only the bridge (and
	// nothing else) carries epoch 0 into batch 2.
	var refresh Batch
	for _, e := range sym {
		if (e.Src == 2 && e.Dst == 3) || (e.Src == 3 && e.Dst == 2) {
			continue
		}
		refresh.Deletes = append(refresh.Deletes, e)
		refresh.Inserts = append(refresh.Inserts, e)
	}
	if _, err := sys.ApplyBatch(refresh); err != nil {
		t.Fatal(err)
	}
	// Batch 2: the bridge expires; the triangles must split into components
	// labeled 0 and 3 — exactly what the union-find rebuild oracle says.
	res, err := sys.ApplyBatch(Batch{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Expired != 2 { // both directions of the bridge
		t.Fatalf("expired %d edges, want 2 (the bridge, both directions)", res.Expired)
	}
	ref := algo.Reference(makeAlgByName(t, "wcc"), sys.Graph())
	if d := algo.MaxAbsDiff(sys.StateRef(), ref); d != 0 {
		t.Fatalf("post-split state deviates from union-find oracle by %v", d)
	}
	for _, v := range []int{3, 4, 5} {
		if sys.StateRef()[v] != 3 {
			t.Fatalf("vertex %d labeled %v after the bridge expired, want 3", v, sys.StateRef()[v])
		}
	}
}
