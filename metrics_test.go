package jetstream

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// runStream builds a system over a fixed RMAT graph, runs the initial
// evaluation and a few update batches, and returns it.
func runStream(t *testing.T, opts ...Option) *System {
	t.Helper()
	g := RMAT(RMATConfig{Vertices: 4000, Edges: 32000, Seed: 3})
	sys, err := New(g, SSSP(0), opts...)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunInitial()
	gen := NewStream(StreamConfig{BatchSize: 120, InsertFrac: 0.7, Seed: 9})
	for i := 0; i < 3; i++ {
		if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
			t.Fatal(err)
		}
	}
	return sys
}

// TestMetricsConservation asserts the attribution contract: at operation
// boundaries the per-worker series sum exactly to the global counters, at
// every parallelism level (sequential work is attributed to worker 0,
// parallel-phase work to the worker that performed it).
func TestMetricsConservation(t *testing.T) {
	for _, p := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("p%d", p), func(t *testing.T) {
			sys := runStream(t, WithTiming(false), WithParallelism(p))
			m := sys.Metrics()
			if len(m.Workers) == 0 {
				t.Fatal("no worker series published")
			}
			var proc, coal, gen, rounds uint64
			for _, w := range m.Workers {
				proc += w.EventsProcessed
				coal += w.EventsCoalesced
				gen += w.EventsGenerated
				rounds += w.Rounds
			}
			tot := m.Totals
			if proc != tot.EventsProcessed {
				t.Errorf("processed: workers sum %d != total %d", proc, tot.EventsProcessed)
			}
			if coal != tot.EventsCoalesced {
				t.Errorf("coalesced: workers sum %d != total %d", coal, tot.EventsCoalesced)
			}
			if gen != tot.EventsGenerated {
				t.Errorf("generated: workers sum %d != total %d", gen, tot.EventsGenerated)
			}
			if rounds != tot.Rounds {
				t.Errorf("rounds: workers sum %d != total %d", rounds, tot.Rounds)
			}
			if m.SchemaVersion != MetricsSchemaVersion {
				t.Errorf("schema version %d, want %d", m.SchemaVersion, MetricsSchemaVersion)
			}
			if m.Batches != 3 {
				t.Errorf("batches %d, want 3", m.Batches)
			}
		})
	}
}

// TestMetricsConservationWithTiming covers the sequential timed path (all
// work attributed to worker 0) and checks the DRAM channel series appear.
func TestMetricsConservationWithTiming(t *testing.T) {
	sys := runStream(t)
	m := sys.Metrics()
	if len(m.Workers) != 1 {
		t.Fatalf("timed sequential run published %d worker series, want 1", len(m.Workers))
	}
	if got, want := m.Workers[0].EventsProcessed, m.Totals.EventsProcessed; got != want {
		t.Errorf("worker 0 processed %d != total %d", got, want)
	}
	if len(m.Channels) == 0 {
		t.Fatal("timing model on but no DRAM channel series")
	}
	var acc uint64
	for _, c := range m.Channels {
		acc += c.Accesses
	}
	if acc == 0 {
		t.Error("DRAM channel series present but zero accesses recorded")
	}
	if m.BatchLatency.Count != 3 { // one observation per applied batch
		t.Errorf("batch latency count %d, want 3", m.BatchLatency.Count)
	}
}

// TestMetricsHandlerScrape scrapes the Prometheus endpoint after streaming
// and cross-checks the exported series against TotalStats — the acceptance
// criterion that `curl :addr/metrics` returns per-worker series summing to
// the global counters.
func TestMetricsHandlerScrape(t *testing.T) {
	sys := runStream(t, WithTiming(false), WithParallelism(4))
	srv := httptest.NewServer(sys.MetricsHandler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)

	var proc uint64
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "jetstream_worker_events_processed_total{") {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(line[strings.LastIndexByte(line, ' ')+1:], "%g", &v); err != nil {
			t.Fatalf("unparseable sample %q: %v", line, err)
		}
		proc += uint64(v)
	}
	if tot := sys.TotalStats().EventsProcessed; proc != tot {
		t.Errorf("scraped worker processed sum %d != TotalStats %d", proc, tot)
	}
	for _, want := range []string{
		"# TYPE jetstream_worker_events_processed_total counter",
		"# TYPE jetstream_batch_latency_ns histogram",
		"jetstream_batches_total 3",
		"jetstream_queue_live_events",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
}

// TestExpvarExport checks the single-var JSON export round-trips.
func TestExpvarExport(t *testing.T) {
	sys := runStream(t, WithTiming(false))
	var m map[string]float64
	if err := json.Unmarshal([]byte(sys.Expvar().String()), &m); err != nil {
		t.Fatalf("expvar output is not a flat JSON object: %v", err)
	}
	if m["jetstream_batches_total"] != 3 {
		t.Errorf("expvar jetstream_batches_total = %v, want 3", m["jetstream_batches_total"])
	}
}

// TestWithObserver checks the streaming trace callback sees the batch
// lifecycle with ordered sequence numbers.
func TestWithObserver(t *testing.T) {
	var mu sync.Mutex
	counts := map[TraceKind]int{}
	obs := ObserverFunc(func(e TraceEvent) {
		mu.Lock()
		counts[e.Kind]++
		mu.Unlock()
	})
	runStream(t, WithTiming(false), WithObserver(obs))
	mu.Lock()
	defer mu.Unlock()
	if counts[TraceBatchStart] != 3 || counts[TraceBatchEnd] != 3 {
		t.Errorf("batch traces start=%d end=%d, want 3/3", counts[TraceBatchStart], counts[TraceBatchEnd])
	}
	if counts[TracePhaseStart] == 0 || counts[TracePhaseStart] != counts[TracePhaseEnd] {
		t.Errorf("phase traces start=%d end=%d, want equal and nonzero",
			counts[TracePhaseStart], counts[TracePhaseEnd])
	}
}

// TestErrConfigConflict pins the typed error for incompatible options and
// that the previously-working combinations still construct.
func TestErrConfigConflict(t *testing.T) {
	g := RMAT(RMATConfig{Vertices: 100, Edges: 400, Seed: 1})
	if _, err := New(g, SSSP(0), WithParallelism(4)); !errors.Is(err, ErrConfigConflict) {
		t.Errorf("parallelism with timing: got %v, want ErrConfigConflict", err)
	}
	if _, err := New(g, SSSP(0), WithTiming(false), WithParallelism(4), WithSlices(2)); !errors.Is(err, ErrConfigConflict) {
		t.Errorf("parallelism with slices: got %v, want ErrConfigConflict", err)
	}
	if _, err := New(g, SSSP(0), WithTiming(false), WithParallelism(4)); err != nil {
		t.Errorf("parallelism with timing off should work: %v", err)
	}
	if _, err := New(g, SSSP(0), WithParallelism(1)); err != nil {
		t.Errorf("parallelism 1 with timing should work: %v", err)
	}
	if _, err := New(g, SSSP(0), WithSlices(2)); err != nil {
		t.Errorf("slices alone should work: %v", err)
	}
}

// TestNewAlgorithm pins the spec constructor and the deprecated wrapper's
// equivalence.
func TestNewAlgorithm(t *testing.T) {
	for _, name := range []string{"sssp", "sswp", "bfs", "cc", "pagerank", "adsorption"} {
		a, err := NewAlgorithm(AlgorithmSpec{Name: name, Root: 2, Eps: 1e-6})
		if err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
		old, err := NewAlgorithm(AlgorithmSpec{Name: name, Root: 2, Eps: 1e-6})
		if err != nil {
			t.Fatalf("NewAlgorithm(%q): %v", name, err)
		}
		if a.Name() != old.Name() {
			t.Errorf("%q: spec and positional constructors disagree: %q vs %q", name, a.Name(), old.Name())
		}
	}
	if _, err := NewAlgorithm(AlgorithmSpec{Name: "nope"}); err == nil {
		t.Error("unknown kernel name accepted")
	}
}
