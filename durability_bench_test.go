package jetstream

import (
	"fmt"
	"io"
	"testing"
)

// The durability cost model the WAL is built around: journaling a batch is
// O(delta) — a few hundred bytes framed and written — while a full checkpoint
// is O(V+E). These benchmarks put numbers behind that claim; CI publishes
// them as the bench-durability artifact.

// benchDurableSystem builds a large-ish system with a WAL in b.TempDir.
func benchDurableSystem(b *testing.B, opts ...Option) (*System, *StreamGenerator) {
	b.Helper()
	g := RMAT(RMATConfig{Vertices: 50_000, Edges: 400_000, Seed: 5})
	sys, err := New(g, SSSP(0), append([]Option{WithTiming(false)}, opts...)...)
	if err != nil {
		b.Fatal(err)
	}
	sys.RunInitial()
	return sys, NewStream(StreamConfig{BatchSize: 200, InsertFrac: 0.7, Seed: 12})
}

// BenchmarkWALAppend measures the per-batch journaling cost alone: encode,
// frame, write, fsync (interval policy amortizes the fsync as a real
// deployment would). The engine work is excluded — this is the price of
// durability, not of computation.
func BenchmarkWALAppend(b *testing.B) {
	for _, tc := range []struct {
		name string
		o    WALOptions
	}{
		{"sync-batch", WALOptions{Sync: WALSyncEveryBatch}},
		{"sync-interval-16", WALOptions{Sync: WALSyncInterval, Interval: 16}},
		{"sync-none", WALOptions{Sync: WALSyncNone}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			sys, gen := benchDurableSystem(b, WithWALOptions(b.TempDir(), tc.o))
			// Pre-draw batches so generator cost stays out of the loop, and
			// journal through the engine once so the snapshot is paid for.
			batches := make([]Batch, b.N)
			for i := range batches {
				batches[i] = gen.Next(sys.Graph())
			}
			if len(batches) > 0 {
				if _, err := sys.ApplyBatch(batches[0]); err != nil {
					b.Fatal(err)
				}
			}
			before := sys.WALSize()
			b.ResetTimer()
			for i := range batches {
				if err := sys.journal(batches[i]); err != nil {
					b.Fatal(err)
				}
				sys.batches++ // stand in for the engine apply the journal precedes
			}
			b.StopTimer()
			b.SetBytes((sys.WALSize() - before) / int64(max(b.N, 1)))
			if err := sys.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkIncrementalCheckpoint compares the two durability strategies at
// one batch per op: incremental (journal the delta, fsync) against rewriting
// a full snapshot every batch. The gap is the O(delta) vs O(V+E) headline.
func BenchmarkIncrementalCheckpoint(b *testing.B) {
	b.Run("incremental", func(b *testing.B) {
		sys, gen := benchDurableSystem(b, WithWAL(b.TempDir()))
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if err := sys.Close(); err != nil {
			b.Fatal(err)
		}
	})
	b.Run("full-snapshot", func(b *testing.B) {
		sys, gen := benchDurableSystem(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
				b.Fatal(err)
			}
			if err := sys.Checkpoint(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkWALRecovery measures replay: recover a directory holding a
// snapshot plus a journaled tail of the given length.
func BenchmarkWALRecovery(b *testing.B) {
	for _, tail := range []int{1, 16, 64} {
		b.Run(fmt.Sprintf("tail-%d", tail), func(b *testing.B) {
			dir := b.TempDir()
			sys, gen := benchDurableSystem(b, WithWAL(dir))
			for i := 0; i < tail; i++ {
				if _, err := sys.ApplyBatch(gen.Next(sys.Graph())); err != nil {
					b.Fatal(err)
				}
			}
			if err := sys.Close(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec, err := RecoverFromDir(dir)
				if err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				if err := rec.Close(); err != nil {
					b.Fatal(err)
				}
				b.StartTimer()
			}
		})
	}
}
